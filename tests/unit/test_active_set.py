"""Bounded active-set extension: forks wait for a slot."""

import pytest

from repro import baseline, compile_program, run_program
from repro.errors import ConfigError, DeadlockError
from repro.machine import MachineConfig
from repro.programs import get_benchmark

SOURCE = """
(program
  (const N 6)
  (global out N :int)
  (global done N :int :empty)
  (kernel work (i)
    (aset! out i (* i 7))
    (aset-ef! done i 1))
  (main
    (forall (i 0 N) (work i))
    (for (i 0 N)
      (sync (aref-ff done i)))))
"""


class TestBoundedActiveSet:
    def test_limit_enforced_and_results_correct(self):
        config = baseline().with_max_active_threads(3)
        compiled = compile_program(SOURCE, config, mode="coupled")
        result = run_program(compiled.program, config)
        assert result.read_symbol("out") == [0, 7, 14, 21, 28, 35]
        assert result.stats.peak_active_threads <= 3
        assert result.stats.spawn_queue_waits > 0
        assert result.stats.threads_spawned == 7

    def test_smaller_sets_cost_cycles(self):
        bench = get_benchmark("matrix")
        inputs = bench.make_inputs(seed=1)
        compiled = compile_program(bench.source("coupled"), baseline(),
                                   mode="coupled")
        cycles = {}
        for limit in (2, 5, None):
            config = baseline().with_max_active_threads(limit)
            result = run_program(compiled.program, config,
                                 overrides=inputs)
            assert not bench.check(result, inputs)
            cycles[limit] = result.cycles
        assert cycles[2] > cycles[5] >= cycles[None]

    def test_too_small_set_deadlocks_visibly(self):
        """With a single slot the parent occupies, its children can
        never run; the paper's (out-of-scope) thread swapping would be
        needed.  The simulator reports this as a diagnosed deadlock."""
        config = baseline().with_max_active_threads(1)
        compiled = compile_program(SOURCE, config, mode="coupled")
        with pytest.raises(DeadlockError, match="active-set slot"):
            run_program(compiled.program, config)

    def test_validation(self):
        with pytest.raises(ConfigError):
            baseline(max_active_threads=0)

    def test_derivations_preserve_limit(self):
        config = baseline().with_max_active_threads(4).with_seed(3)
        assert config.max_active_threads == 4
