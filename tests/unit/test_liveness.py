"""Liveness analysis over home registers."""

from repro.compiler.astnodes import GlobalDecl, INT, Num
from repro.compiler import liveness
from repro.compiler.frontend import parse_stmt
from repro.compiler.lowering import lower_thread
from repro.compiler.sexpr import read_one

SYMBOLS = {"I": GlobalDecl("I", Num(8), INT, True)}


def lowered(text):
    return lower_thread("t", parse_stmt(read_one(text)), SYMBOLS, {})


def home_of(thread_ir, name):
    return thread_ir.homes[name].id


class TestLiveness:
    def test_loop_variable_live_around_backedge(self):
        thread_ir = lowered("""
(let ((i 0))
  (while (< i 4)
    (set! i (+ i 1)))
  (aset! I 0 i))
""")
        live_in, live_out = liveness.analyze(thread_ir)
        i_id = home_of(thread_ir, "i")
        header = next(b for b in thread_ir.blocks
                      if b.name.startswith("h"))
        assert i_id in live_in[header.name]
        assert i_id in live_out[header.name]

    def test_dead_after_last_use(self):
        thread_ir = lowered("""
(let ((x 1))
  (aset! I 0 x)
  (let ((y 2))
    (aset! I 1 y)))
""")
        live_in, live_out = liveness.analyze(thread_ir)
        x_id = home_of(thread_ir, "x")
        last = thread_ir.blocks[-1]
        assert x_id not in live_out[last.name]

    def test_value_defined_in_branch_live_at_join(self):
        thread_ir = lowered("""
(let ((x 1))
  (if (aref I 0) (set! x 2) (set! x 3))
  (aset! I 1 x))
""")
        live_in, __ = liveness.analyze(thread_ir)
        x_id = home_of(thread_ir, "x")
        join = next(b for b in thread_ir.blocks if b.name.startswith("j"))
        assert x_id in live_in[join.name]

    def test_use_def_sets(self):
        thread_ir = lowered("(let ((x 1)) (set! x (+ x 1)))")
        block = thread_ir.blocks[0]
        use, defs = liveness.block_use_def(block)
        x_id = home_of(thread_ir, "x")
        assert x_id in defs
        # x is defined before used within the block.
        assert x_id not in use
