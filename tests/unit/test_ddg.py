"""Dependence graph construction, including affine alias analysis."""

from repro.compiler.astnodes import FLOAT, GlobalDecl, INT, Num
from repro.compiler.frontend import parse_stmt
from repro.compiler.lowering import lower_thread
from repro.compiler.schedule.ddg import build_ddg
from repro.compiler.sexpr import read_one

SYMBOLS = {
    "F": GlobalDecl("F", Num(64), FLOAT, True),
    "I": GlobalDecl("I", Num(64), INT, True),
}


def graph_for(text, block_index=0):
    thread_ir = lower_thread("t", parse_stmt(read_one(text)), SYMBOLS, {})
    block = thread_ir.blocks[block_index]
    return build_ddg(block, lambda instr: 1), block


def edges_of(graph, kind=None):
    result = []
    for succ, edges in enumerate(graph.preds):
        for edge in edges:
            if kind is None or edge.kind == kind:
                result.append((edge.pred, edge.succ, edge.kind))
    return result


def mem_edge_pairs(graph):
    return {(p, s) for p, s, __ in edges_of(graph, "mem")}


def instr_index(graph, op, occurrence=0):
    seen = 0
    for index, instr in enumerate(graph.instrs):
        if instr.op == op:
            if seen == occurrence:
                return index
            seen += 1
    raise AssertionError("no %s #%d" % (op, occurrence))


class TestRegisterDependences:
    def test_true_dependence(self):
        graph, __ = graph_for("(let ((x (+ 1 2))) (aset! I 0 (* x 3)))")
        kinds = {k for __, __, k in edges_of(graph)}
        assert "true" in kinds

    def test_anti_dependence_on_redefinition(self):
        graph, __ = graph_for("""
(let ((x 1))
  (aset! I 0 (+ x 1))
  (set! x 2))
""")
        assert edges_of(graph, "anti")

    def test_output_dependence(self):
        graph, __ = graph_for("(let ((x 1)) (set! x 2) (aset! I 0 x))")
        assert edges_of(graph, "output")


class TestMemoryOrdering:
    def test_store_load_same_constant_index_ordered(self):
        graph, __ = graph_for("""
(begin
  (aset! F 5 1.0)
  (aset! F 0 (aref F 5)))
""")
        st = instr_index(graph, "st", 0)
        ld = instr_index(graph, "ld", 0)
        assert (st, ld) in mem_edge_pairs(graph)

    def test_different_constant_indices_independent(self):
        graph, __ = graph_for("""
(begin
  (aset! F 5 1.0)
  (aset! F 0 (aref F 6)))
""")
        st = instr_index(graph, "st", 0)
        ld = instr_index(graph, "ld", 0)
        assert (st, ld) not in mem_edge_pairs(graph)

    def test_different_symbols_independent(self):
        graph, __ = graph_for("""
(begin
  (aset! I 5 1)
  (aset! F 0 (aref F 5)))
""")
        st = instr_index(graph, "st", 0)
        ld = instr_index(graph, "ld", 0)
        assert (st, ld) not in mem_edge_pairs(graph)

    def test_affine_offsets_disambiguate(self):
        """A[i] store vs A[i+1] load: provably disjoint."""
        graph, __ = graph_for("""
(let ((i (aref I 0)))
  (aset! F i 1.0)
  (aset! F 63 (aref F (+ i 1))))
""")
        st = instr_index(graph, "st", 0)
        ld = instr_index(graph, "ld", 1)   # load of F[i+1]
        assert (st, ld) not in mem_edge_pairs(graph)

    def test_same_affine_form_aliases(self):
        graph, __ = graph_for("""
(let ((i (aref I 0)))
  (aset! F (+ i 1) 1.0)
  (aset! F 63 (aref F (+ i 1))))
""")
        st = instr_index(graph, "st", 0)
        ld = instr_index(graph, "ld", 1)
        assert (st, ld) in mem_edge_pairs(graph)

    def test_unrelated_bases_conservatively_alias(self):
        graph, __ = graph_for("""
(let ((i (aref I 0)) (j (aref I 1)))
  (aset! F i 1.0)
  (aset! F 63 (aref F j)))
""")
        st = instr_index(graph, "st", 0)
        ld = instr_index(graph, "ld", 2)
        assert (st, ld) in mem_edge_pairs(graph)

    def test_loads_never_ordered_against_loads(self):
        graph, __ = graph_for("""
(aset! F 0 (+ (aref F 1) (aref F 1)))
""")
        ld0 = instr_index(graph, "ld", 0)
        ld1 = instr_index(graph, "ld", 1)
        assert (ld0, ld1) not in mem_edge_pairs(graph)


class TestBarriers:
    def test_sync_access_orders_all_memory(self):
        graph, __ = graph_for("""
(begin
  (aset! F 1 1.0)
  (aset-ef! I 0 1)
  (aset! F 2 2.0))
""")
        st1 = instr_index(graph, "st", 0)
        st_ef = instr_index(graph, "st_ef", 0)
        st2 = instr_index(graph, "st", 1)
        pairs = mem_edge_pairs(graph)
        assert (st1, st_ef) in pairs
        assert (st_ef, st2) in pairs

    def test_fork_is_a_barrier(self):
        from repro.compiler.lowering import lower_thread
        from repro.compiler.frontend import parse_stmt
        body = parse_stmt(read_one("""
(begin
  (aset! F 1 1.0)
  (fork (w 0))
  (aset! F 2 2.0))
"""))
        thread_ir = lower_thread("t", body, SYMBOLS, {"w": ["i"]})
        graph = build_ddg(thread_ir.blocks[0], lambda instr: 1)
        st1 = instr_index(graph, "st", 0)
        fork = instr_index(graph, "fork", 0)
        st2 = instr_index(graph, "st", 1)
        pairs = mem_edge_pairs(graph)
        assert (st1, fork) in pairs and (fork, st2) in pairs


class TestPriorities:
    def test_critical_path_priority_decreases_downstream(self):
        graph, __ = graph_for(
            "(let ((x (+ 1 2))) (aset! I 0 (* x 3)))")
        priority = graph.priorities(lambda instr: 1)
        add = instr_index(graph, "iadd", 0)
        mul = instr_index(graph, "imul", 0)
        assert priority[add] > priority[mul]
