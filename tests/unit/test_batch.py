"""The batch lane engine's building blocks (repro.sim.batch).

The property suite pins end-to-end four-way equivalence; the tests
here exercise the parts in isolation: LaneVec dtype classification
and scalar-fidelity extraction, the vectorized opcode kernels against
the scalar semantics table (including the NaN-ordering and int-bound
corners), the unanimity-or-peel vote and its tie rule, override
merging, and the run_batch error paths.
"""

import math

import pytest

np = pytest.importorskip("numpy")

from repro import baseline, compile_program, run_program
from repro.errors import SimulationError
from repro.isa.operations import opcode
from repro.sim.batch import (AllLanesPeeled, BatchNode, LaneVec, _INT_BOUND,
                             _build_kernels, batch_supported,
                             merge_overrides, run_batch)

SOURCE = """
(program
  (const N 4)
  (global A N)
  (global B N)
  (main
    (for (i 0 N)
      (let ((x (aref A i)))
        (aset! B i (+ (* x x) 1.0))))))
"""


def _config():
    return baseline().with_engine("event").with_fusion(False)


def _program(source=SOURCE):
    return compile_program(source, _config(), mode="seq").program


class TestLaneVec:
    def test_float_classification(self):
        v = LaneVec.of([1.0, -0.0, 2.5])
        assert v.kind == "f"
        assert v.a.dtype == np.float64

    def test_int_classification_respects_bound(self):
        assert LaneVec.of([1, 2, -3]).kind == "i"
        assert LaneVec.of([1, _INT_BOUND]).kind == "o"
        assert LaneVec.of([1, -_INT_BOUND]).kind == "o"

    def test_bool_is_not_int(self):
        # The scalar kernel stores Python bools from nowhere (compares
        # produce ints), but type() strictness must not misfile them.
        assert LaneVec.of([True, False]).kind == "o"

    def test_mixed_goes_object(self):
        v = LaneVec.of([1, 2.0])
        assert v.kind == "o"
        assert v.get(0) == 1 and type(v.get(0)) is int
        assert v.get(1) == 2.0 and type(v.get(1)) is float

    def test_get_returns_plain_scalars(self):
        f = LaneVec.of([1.5, 2.5])
        i = LaneVec.of([3, 4])
        assert type(f.get(0)) is float and f.get(1) == 2.5
        assert type(i.get(0)) is int and i.get(1) == 4

    def test_get_preserves_signed_zero(self):
        v = LaneVec.of([0.0, -0.0])
        assert math.copysign(1.0, v.get(1)) == -1.0

    def test_full_and_len(self):
        v = LaneVec.full(7, 3)
        assert len(v) == 3 and [v.get(k) for k in range(3)] == [7, 7, 7]


class _KernelHarness:
    """Just enough BatchNode surface for exercising kernels directly."""

    def __init__(self, lanes):
        self.lanes = lanes
        self._live = set(range(lanes))
        self._live_list = sorted(self._live)
        self.peeled = {}
        self.cycle = 0

    def _peel(self, lanes, reason):
        for lane in lanes:
            self._live.discard(lane)
            self.peeled[lane] = (reason, self.cycle)
        self._live_list = sorted(self._live)
        if not self._live_list:
            raise AllLanesPeeled()


class TestKernels:
    KERNELS = _build_kernels()

    def _run(self, name, *cols, lanes=None):
        lanes = lanes if lanes is not None else len(cols[0])
        node = _KernelHarness(lanes)
        out = self.KERNELS[name](node, [LaneVec.of(list(c)) for c in cols])
        return node, out

    @pytest.mark.parametrize("name,cols", [
        ("fadd", ([1.5, -2.0], [0.25, 3.0])),
        ("fsub", ([1.5, -2.0], [0.25, 3.0])),
        ("fmul", ([1.5, -2.0], [0.25, 3.0])),
        ("fneg", ([1.5, -0.0],)),
        ("fabs", ([-1.5, 2.0],)),
        ("iadd", ([5, -7], [3, 2])),
        ("isub", ([5, -7], [3, 2])),
        ("imul", ([5, -7], [3, 2])),
        ("iand", ([12, 9], [10, 3])),
        ("ior", ([12, 9], [10, 3])),
        ("ixor", ([12, 9], [10, 3])),
        ("imin", ([5, -7], [3, 2])),
        ("imax", ([5, -7], [3, 2])),
        ("ineg", ([5, -7],)),
        ("inot", ([5, -7],)),
        ("itof", ([5, -7],)),
        ("ieq", ([1, 2], [1, 3])), ("ine", ([1, 2], [1, 3])),
        ("ilt", ([1, 2], [1, 3])), ("ile", ([1, 2], [1, 3])),
        ("igt", ([1, 2], [1, 3])), ("ige", ([1, 2], [1, 3])),
        ("feq", ([1.0, 2.0], [1.0, 3.0])),
        ("flt", ([1.0, 2.0], [1.0, 3.0])),
        ("fmin", ([1.0, 5.0], [2.0, 3.0])),
        ("fmax", ([1.0, 5.0], [2.0, 3.0])),
    ])
    def test_matches_scalar_semantics(self, name, cols):
        sem = opcode(name).semantics
        node, out = self._run(name, *cols)
        assert not node.peeled
        for lane in range(len(cols[0])):
            expect = sem(*[c[lane] for c in cols])
            got = out.get(lane)
            assert got == expect and type(got) is type(expect), \
                "%s lane %d: %r != %r" % (name, lane, got, expect)

    def test_fmin_fmax_nan_matches_python(self):
        nan = float("nan")
        sem_min = opcode("fmin").semantics
        sem_max = opcode("fmax").semantics
        for name, sem in (("fmin", sem_min), ("fmax", sem_max)):
            for a, b in [(nan, 1.0), (1.0, nan)]:
                __, out = self._run(name, [a, a], [b, b])
                expect = sem(a, b)
                got = out.get(0)
                assert (math.isnan(got) and math.isnan(expect)) \
                    or got == expect

    def test_int_kernel_demotes_at_bound(self):
        big = _INT_BOUND - 1
        __, out = self._run("iadd", [big, 1], [big, 1])
        assert out.kind == "o"
        assert out.get(0) == 2 * big and type(out.get(0)) is int
        __, small = self._run("iadd", [1, 2], [3, 4])
        assert small.kind == "i"

    def test_inot_stays_exact_at_edge(self):
        __, out = self._run("inot", [_INT_BOUND - 1, 0])
        assert out.get(0) == ~(_INT_BOUND - 1)
        assert out.get(1) == ~0

    def test_compare_declines_mixed_kinds(self):
        node = _KernelHarness(2)
        out = self.KERNELS["ieq"](node, [LaneVec.of([1, 2]),
                                         LaneVec.of([1.0, 2.0])])
        assert out is None           # falls back to scalar semantics

    def test_fdiv_peels_zero_divisor_lanes(self):
        node, out = self._run("fdiv", [1.0, 1.0, 1.0], [2.0, 0.0, 4.0])
        assert list(node.peeled) == [1]
        assert node.peeled[1][0] == "fdiv-by-zero"
        assert out.get(0) == 0.5 and out.get(2) == 0.25

    def test_fsqrt_peels_negative_lanes(self):
        node, out = self._run("fsqrt", [4.0, -1.0, 9.0])
        assert list(node.peeled) == [1]
        assert node.peeled[1][0] == "fsqrt-negative"
        assert out.get(0) == 2.0 and out.get(2) == 3.0

    def test_mov_is_identity(self):
        vec = LaneVec.of([1.5, 2.5])
        node = _KernelHarness(2)
        assert self.KERNELS["fmov"](node, [vec]) is vec


class TestVote:
    def _node(self, lanes):
        node = BatchNode.__new__(BatchNode)
        node.lanes = lanes
        node._live = set(range(lanes))
        node._live_list = sorted(node._live)
        node.peeled = {}
        node.cycle = 17
        from repro.sim.stats import Stats
        node.stats = Stats()
        return node

    def test_unanimous_peels_nothing(self):
        node = self._node(4)
        assert node._vote(lambda lane: 5, "branch") == 5
        assert not node.peeled

    def test_majority_wins_minority_peels(self):
        node = self._node(5)
        values = [1, 1, 2, 1, 2]
        assert node._vote(lambda lane: values[lane], "branch") == 1
        assert sorted(node.peeled) == [2, 4]
        assert node.peeled[2] == ("branch", 17)

    def test_tie_keeps_lowest_live_lane(self):
        node = self._node(2)
        values = [1, 2]
        assert node._vote(lambda lane: values[lane], "branch") == 1
        assert sorted(node.peeled) == [1]

    def test_all_peeled_raises(self):
        # the raise fires on the transition to an empty live set, with
        # the ledger already complete for the caller to read
        node = self._node(2)
        with pytest.raises(AllLanesPeeled):
            node._peel([0, 1], "branch")
        assert sorted(node.peeled) == [0, 1]


class TestMergeOverrides:
    def test_collapses_agreement_per_position(self):
        merged = merge_overrides([{"A": [1.0, 2.0]}, {"A": [1.0, 9.0]}])
        col = merged["A"]
        assert col[0] == 1.0 and not isinstance(col[0], LaneVec)
        assert isinstance(col[1], LaneVec)
        assert col[1].get(1) == 9.0

    def test_repr_equality_keeps_signed_zero_apart(self):
        merged = merge_overrides([{"A": [0.0]}, {"A": [-0.0]}])
        assert isinstance(merged["A"][0], LaneVec)

    def test_repr_equality_keeps_int_float_apart(self):
        merged = merge_overrides([{"A": [1]}, {"A": [1.0]}])
        assert isinstance(merged["A"][0], LaneVec)


class TestRunBatch:
    def test_supported(self):
        assert batch_supported()

    def test_lockstep_matches_scalar(self):
        program = _program()
        config = _config()
        lane_inputs = [{"A": [0.5, -1.5, 2.0, 3.25]},
                       {"A": [1.0, 2.0, -0.5, 0.25]}]
        outcome = run_batch(program, config, lane_inputs)
        assert outcome.lockstep_lanes == [0, 1]
        assert not outcome.peeled
        for lane, inputs in enumerate(lane_inputs):
            scalar = run_program(program, config, overrides=inputs)
            sim = outcome.results[lane]
            assert sim.cycles == scalar.cycles
            assert sim.memory._values == scalar.memory._values
            assert sim.memory._empty == scalar.memory._empty

    def test_identical_lanes_stay_scalar_throughout(self):
        program = _program()
        config = _config()
        inputs = {"A": [0.5, -1.5, 2.0, 3.25]}
        outcome = run_batch(program, config, [dict(inputs), dict(inputs)])
        assert outcome.lockstep_lanes == [0, 1]
        scalar = run_program(program, config, overrides=inputs)
        assert outcome.results[0].cycles == scalar.cycles

    def test_stats_record_lane_counters(self):
        program = _program()
        config = _config()
        outcome = run_batch(program, config,
                            [{"A": [0.5, -1.5, 2.0, 3.25]},
                             {"A": [1.0, 2.0, -0.5, 0.25]}])
        stats = outcome.results[0].stats
        assert stats.batch_lanes == 2
        assert stats.batch_peeled_lanes == 0

    def test_shared_error_peels_everyone(self):
        program = _program()
        config = _config()
        outcome = run_batch(program, config,
                            [{"A": [0.5, -1.5, 2.0, 3.25]},
                             {"A": [1.0, 2.0, -0.5, 0.25]}],
                            max_cycles=3)
        assert outcome.lockstep_lanes == []
        assert sorted(outcome.peeled) == [0, 1]
        for reason, __ in outcome.peeled.values():
            assert reason.startswith("error:")

    def test_empty_bundle_rejected(self):
        with pytest.raises(SimulationError):
            run_batch(_program(), _config(), [])

    def test_lane_result_refuses_peeled_lane(self):
        config = _config()
        node = BatchNode(config, 2)
        node._peel([1], "branch")
        with pytest.raises(SimulationError):
            node.lane_result(1)
