"""The supervised-sweep layer (repro.experiments.supervision):
failure policy, the journaled ledger, replayed results, and the
serial collect path.  Pool-level crash isolation is covered by
tests/integration/test_supervised_sweep.py and the property suite.
"""

import json

import pytest

from repro.errors import (CellFailure, CellTimeoutError, ConfigError,
                          SweepJournalError, VerificationError,
                          WatchdogError)
from repro.experiments.runner import Harness, RunSpec
from repro.experiments.supervision import (ReplayedStats,
                                           SupervisorPolicy,
                                           SweepJournal,
                                           run_key_digest)


class TestPolicy:
    def test_defaults(self):
        policy = SupervisorPolicy()
        assert policy.on_error == "raise"
        assert policy.cell_timeout is None
        assert policy.max_retries == 2

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ConfigError):
            SupervisorPolicy(on_error="ignore")

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ConfigError):
            SupervisorPolicy(cell_timeout=0)
        with pytest.raises(ConfigError):
            SupervisorPolicy(cell_timeout=-1.0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigError):
            SupervisorPolicy(max_retries=-1)

    def test_backoff_doubles_and_caps(self):
        policy = SupervisorPolicy(backoff_base=0.1, backoff_cap=0.5)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert policy.backoff(4) == pytest.approx(0.5)   # capped
        assert policy.backoff(10) == pytest.approx(0.5)

    def test_zero_base_disables_backoff(self):
        assert SupervisorPolicy(backoff_base=0.0).backoff(3) == 0.0


class TestCellFailure:
    def test_from_exception_shapes_fields(self):
        exc = WatchdogError("no progress", cycle=123)
        failure = CellFailure.from_exception("matrix", "coupled", exc,
                                             attempts=2,
                                             key_digest="abc123")
        assert not failure.ok
        assert failure.benchmark == "matrix"
        assert failure.mode == "coupled"
        assert failure.error_type == "WatchdogError"
        assert "no progress" in failure.message
        assert failure.attempts == 2
        assert failure.timed_out is False
        assert failure.key_digest == "abc123"

    def test_timeout_flagged(self):
        exc = CellTimeoutError("lud", "sts", 5.0)
        failure = CellFailure.from_exception("lud", "sts", exc)
        assert failure.timed_out is True
        assert failure.error_type == "CellTimeoutError"

    def test_record_is_json_serializable(self):
        failure = CellFailure("fft", "tpe", "OSError", "boom",
                              attempts=3, timed_out=False)
        record = json.loads(json.dumps(failure.as_record()))
        assert record["benchmark"] == "fft"
        assert record["attempts"] == 3


class TestVerificationError:
    def test_message_carries_reproduction_context(self):
        problems = ["out[%d] wrong" % i for i in range(7)]
        exc = VerificationError("matrix", "coupled", "baseline",
                                problems, signature="deadbeef1234",
                                seed=42)
        text = str(exc)
        assert "7 problem(s)" in text
        assert "(+4 more)" in text
        assert "run_signature=deadbeef1234" in text
        assert "seed=42" in text
        assert exc.problems == problems


class TestRunKeyDigest:
    def test_stable_and_discriminating(self):
        from repro.machine import baseline
        key_a = ("matrix", "coupled",
                 baseline().run_signature(), 1, 100)
        key_b = ("matrix", "coupled",
                 baseline().run_signature(), 2, 100)
        assert run_key_digest(key_a) == run_key_digest(key_a)
        assert run_key_digest(key_a) != run_key_digest(key_b)


class TestSweepJournal:
    HEADER = {"seed": 1, "check": True, "max_cycles": 100,
              "fast_forward": True}

    def test_round_trip(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(path, self.HEADER)
        assert journal.completed_count == 0
        journal.record_ok("k1", {"benchmark": "matrix", "mode": "seq",
                                 "cycles": 10})
        journal.record_failed("k2", CellFailure("fft", "tpe", "X", "y"))
        journal.close()
        reloaded = SweepJournal(path, self.HEADER)
        assert reloaded.completed_count == 1
        assert reloaded.failed_count == 1
        assert reloaded.completed("k1")["cycles"] == 10
        assert reloaded.completed("k2") is None   # failures re-run

    def test_header_mismatch_rejected(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        SweepJournal(path, self.HEADER).record_ok("k", {"cycles": 1})
        other = dict(self.HEADER, seed=99)
        with pytest.raises(SweepJournalError):
            SweepJournal(path, other)

    def test_stale_report_schema_rejected_with_clear_message(
            self, tmp_path):
        # A journal written before a report schema bump must be refused
        # with a message naming the schemas, not a generic header diff.
        path = tmp_path / "sweep.jsonl"
        old = dict(self.HEADER, report_schema=3)
        SweepJournal(path, old).record_ok("k", {"cycles": 1})
        new = dict(self.HEADER, report_schema=4)
        with pytest.raises(SweepJournalError) as excinfo:
            SweepJournal(path, new)
        message = str(excinfo.value)
        assert "schema 3" in message and "schema 4" in message
        assert "fresh journal" in message

    def test_torn_final_line_skipped(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(path, self.HEADER)
        journal.record_ok("k1", {"cycles": 10})
        journal.record_ok("k2", {"cycles": 20})
        journal.close()
        # Simulate a kill -9 mid-write: chop the last line in half.
        text = path.read_text()
        path.write_text(text[:len(text) - 15])
        reloaded = SweepJournal(path, self.HEADER)
        assert reloaded.completed("k1")["cycles"] == 10
        assert reloaded.completed("k2") is None

    def test_missing_file_is_empty(self, tmp_path):
        journal = SweepJournal(tmp_path / "absent.jsonl", self.HEADER)
        assert journal.completed_count == 0

    def test_append_preserves_existing_cells(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(path, self.HEADER)
        journal.record_ok("k1", {"cycles": 10})
        journal.close()
        second = SweepJournal(path, self.HEADER)
        second.record_ok("k2", {"cycles": 20})
        second.close()
        reloaded = SweepJournal(path, self.HEADER)
        assert reloaded.completed_count == 2
        # Exactly one header line.
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert sum(1 for l in lines if l["kind"] == "header") == 1


class TestReplayedStats:
    def test_exposes_summary_and_operations(self):
        stats = ReplayedStats({"cycles": 42, "operations": 7,
                               "fpu_util": 0.5})
        assert stats.summary() == {"cycles": 42, "operations": 7,
                                   "fpu_util": 0.5}
        assert stats.total_operations == 7
        assert stats.cycles == 42


class TestSerialCollect:
    """run_many's in-process path under on_error="collect"."""

    def _failing_harness(self, fail_on):
        harness = Harness(compile_cache=False)
        original = Harness.run

        def run(self, benchmark, mode, config=None, tag=None,
                seed=None):
            if (benchmark, mode) in fail_on:
                raise WatchdogError("injected hang", cycle=1)
            return original(self, benchmark, mode, config, tag, seed)

        harness.run = run.__get__(harness)
        return harness

    def test_failure_collected_in_spec_order(self):
        harness = self._failing_harness({("matrix", "seq")})
        specs = [RunSpec("matrix", "seq"), RunSpec("matrix", "coupled")]
        results = harness.run_many(specs, on_error="collect")
        assert not results[0].ok
        assert results[0].error_type == "WatchdogError"
        assert results[1].ok and results[1].cycles > 0

    def test_raise_policy_propagates(self):
        harness = self._failing_harness({("matrix", "seq")})
        with pytest.raises(WatchdogError):
            harness.run_many([RunSpec("matrix", "seq")])

    def test_failure_not_cached_for_later_runs(self):
        # A collected failure must not poison the run cache: a direct
        # run() afterwards retries the cell.
        harness = self._failing_harness({("matrix", "seq")})
        results = harness.run_many([RunSpec("matrix", "seq")],
                                   on_error="collect")
        assert not results[0].ok
        harness.run = Harness.run.__get__(harness)   # heal
        assert harness.run("matrix", "seq").cycles > 0

    def test_journal_records_failures_but_replays_only_ok(self,
                                                         tmp_path):
        path = tmp_path / "sweep.jsonl"
        harness = self._failing_harness({("matrix", "seq")})
        specs = [RunSpec("matrix", "seq"), RunSpec("matrix", "coupled")]
        harness.run_many(specs, on_error="collect", journal=str(path))
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        statuses = sorted(l["status"] for l in lines
                          if l.get("kind") == "cell")
        assert statuses == ["failed", "ok"]
        # Resume with a healthy harness: the ok cell replays, the
        # failed cell re-runs and now succeeds.
        healthy = Harness(compile_cache=False)
        results = healthy.run_many(specs, on_error="collect",
                                   journal=str(path))
        assert results[0].ok and not results[0].replayed
        assert results[1].ok and results[1].replayed


class TestJournalResume:
    def test_replayed_results_match_originals(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        specs = [RunSpec("matrix", "seq"), RunSpec("matrix", "coupled")]
        first = Harness(compile_cache=False)
        originals = first.run_many(specs, journal=str(path))
        # A fresh harness resuming from the journal must not simulate
        # at all: poison run_program to prove it.
        import repro.experiments.runner as runner_module
        resumed_harness = Harness(compile_cache=False)

        def boom(*args, **kwargs):
            raise AssertionError("resume must not re-simulate")

        original_run_program = runner_module.run_program
        runner_module.run_program = boom
        try:
            resumed = resumed_harness.run_many(specs, journal=str(path))
        finally:
            runner_module.run_program = original_run_program
        for old, new in zip(originals, resumed):
            assert new.replayed and not old.replayed
            assert new.cycles == old.cycles
            assert new.stats.summary() == old.stats.summary()
            assert new.utilization == old.utilization
            assert new.stats.total_operations == \
                old.stats.total_operations

    def test_partial_journal_reruns_only_remainder(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        specs = [RunSpec("matrix", "seq"), RunSpec("matrix", "coupled"),
                 RunSpec("fft", "coupled")]
        first = Harness(compile_cache=False)
        originals = first.run_many(specs, journal=str(path))
        # Keep the header and the first completed cell only — as if
        # the sweep was killed two cells in.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")
        executed = []
        original = Harness.run

        def counting_run(self, benchmark, mode, config=None, tag=None,
                         seed=None):
            executed.append((benchmark, mode))
            return original(self, benchmark, mode, config, tag, seed)

        resumed_harness = Harness(compile_cache=False)
        resumed_harness.run = counting_run.__get__(resumed_harness)
        resumed = resumed_harness.run_many(specs, journal=str(path))
        assert len(executed) == 2                  # only the remainder
        assert ("matrix", "seq") not in executed
        assert [r.cycles for r in resumed] == \
            [r.cycles for r in originals]
        assert resumed[0].replayed
        assert not resumed[1].replayed and not resumed[2].replayed
        # The journal is whole again.
        reloaded = SweepJournal(path, first._journal_header())
        assert reloaded.completed_count == 3
