"""Differential property testing: random programs must produce the same
memory image under (compile -> simulate) as under the reference
interpreter, in every machine mode, bit for bit (identical operation
order and shared ISA semantics make exact float equality achievable)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import compile_program, interpret, run_program
from repro.machine import baseline, single_cluster, unit_mix

INT_VARS = ("i0", "i1", "i2")
FLOAT_VARS = ("f0", "f1")
ARRAY_SIZE = 8


@st.composite
def int_exprs(draw, depth=0, loop_vars=()):
    choices = ["lit", "var"]
    if depth < 3:
        choices += ["add", "sub", "mul", "and", "or", "minmax", "cmp"]
    kind = draw(st.sampled_from(choices))
    if kind == "lit":
        return str(draw(st.integers(-8, 8)))
    if kind == "var":
        return draw(st.sampled_from(INT_VARS + tuple(loop_vars)))
    left = draw(int_exprs(depth=depth + 1, loop_vars=loop_vars))
    right = draw(int_exprs(depth=depth + 1, loop_vars=loop_vars))
    if kind == "add":
        return "(+ %s %s)" % (left, right)
    if kind == "sub":
        return "(- %s %s)" % (left, right)
    if kind == "mul":
        return "(* %s %s)" % (left, right)
    if kind == "and":
        return "(& %s %s)" % (left, right)
    if kind == "or":
        return "(| %s %s)" % (left, right)
    if kind == "minmax":
        op = draw(st.sampled_from(["min", "max"]))
        return "(%s %s %s)" % (op, left, right)
    op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
    return "(%s %s %s)" % (op, left, right)


@st.composite
def index_exprs(draw, loop_vars=()):
    inner = draw(int_exprs(depth=2, loop_vars=loop_vars))
    return "(& %s %d)" % (inner, ARRAY_SIZE - 1)


@st.composite
def float_exprs(draw, depth=0, loop_vars=()):
    choices = ["lit", "var", "load", "widen"]
    if depth < 3:
        choices += ["add", "sub", "mul"]
    kind = draw(st.sampled_from(choices))
    if kind == "lit":
        value = draw(st.floats(min_value=-4, max_value=4,
                               allow_nan=False))
        return repr(float(value))
    if kind == "var":
        return draw(st.sampled_from(FLOAT_VARS))
    if kind == "load":
        return "(aref FARR %s)" % draw(index_exprs(loop_vars=loop_vars))
    if kind == "widen":
        return "(float %s)" % draw(int_exprs(depth=depth + 1,
                                             loop_vars=loop_vars))
    op = {"add": "+", "sub": "-", "mul": "*"}[kind]
    left = draw(float_exprs(depth=depth + 1, loop_vars=loop_vars))
    right = draw(float_exprs(depth=depth + 1, loop_vars=loop_vars))
    return "(%s %s %s)" % (op, left, right)


@st.composite
def statements(draw, depth=0, loop_vars=(), loop_counter=[0]):
    choices = ["iset", "fset", "istore", "fstore"]
    if depth < 2:
        choices += ["if", "if", "for", "begin"]
    kind = draw(st.sampled_from(choices))
    if kind == "iset":
        return "(set! %s %s)" % (draw(st.sampled_from(INT_VARS)),
                                 draw(int_exprs(loop_vars=loop_vars)))
    if kind == "fset":
        return "(set! %s %s)" % (draw(st.sampled_from(FLOAT_VARS)),
                                 draw(float_exprs(loop_vars=loop_vars)))
    if kind == "istore":
        return "(aset! IARR %s %s)" % (
            draw(index_exprs(loop_vars=loop_vars)),
            draw(int_exprs(loop_vars=loop_vars)))
    if kind == "fstore":
        return "(aset! FARR %s %s)" % (
            draw(index_exprs(loop_vars=loop_vars)),
            draw(float_exprs(loop_vars=loop_vars)))
    if kind == "if":
        cond = draw(int_exprs(depth=2, loop_vars=loop_vars))
        then = draw(statements(depth=depth + 1, loop_vars=loop_vars))
        if draw(st.booleans()):
            els = draw(statements(depth=depth + 1, loop_vars=loop_vars))
            return "(if %s %s %s)" % (cond, then, els)
        return "(if %s %s)" % (cond, then)
    if kind == "for":
        loop_counter[0] += 1
        var = "k%d" % loop_counter[0]
        bound = draw(st.integers(1, 5))
        body = draw(st.lists(
            statements(depth=depth + 1, loop_vars=loop_vars + (var,)),
            min_size=1, max_size=3))
        return "(for (%s 0 %d) %s)" % (var, bound, " ".join(body))
    body = draw(st.lists(statements(depth=depth + 1,
                                    loop_vars=loop_vars),
                         min_size=1, max_size=3))
    return "(begin %s)" % " ".join(body)


@st.composite
def programs(draw):
    body = draw(st.lists(statements(), min_size=1, max_size=6))
    inits = ["(i0 1) (i1 -2) (i2 3)",
             "(f0 0.5) (f1 -1.25)"]
    return """
(program
  (global IARR %d :int)
  (global FARR %d)
  (main
    (let (%s %s)
      %s
      (aset! IARR 0 (+ i0 (+ i1 i2)))
      (aset! FARR 0 (+ f0 f1)))))
""" % (ARRAY_SIZE, ARRAY_SIZE, inits[0], inits[1], "\n      ".join(body))


CONFIGS = {
    "baseline": baseline(),
    "single": single_cluster(),
    "mix": unit_mix(2, 1),
}


class TestCompiledMatchesInterpreter:
    @given(source=programs(),
           mode=st.sampled_from(["seq", "sts"]),
           config_name=st.sampled_from(sorted(CONFIGS)))
    @settings(max_examples=60, deadline=None)
    def test_random_programs(self, source, mode, config_name):
        config = CONFIGS[config_name]
        expected = interpret(source)
        compiled = compile_program(source, config, mode=mode)
        result = run_program(compiled.program, config)
        for symbol in ("IARR", "FARR"):
            assert result.read_symbol(symbol) == \
                expected.read_symbol(symbol), (mode, config_name, source)

    @given(source=programs())
    @settings(max_examples=25, deadline=None)
    def test_optimizer_preserves_semantics(self, source):
        config = CONFIGS["baseline"]
        optimized = compile_program(source, config, mode="sts")
        raw = compile_program(source, config, mode="sts", optimize=False)
        a = run_program(optimized.program, config)
        b = run_program(raw.program, config)
        for symbol in ("IARR", "FARR"):
            assert a.read_symbol(symbol) == b.read_symbol(symbol), source

    @given(source=programs())
    @settings(max_examples=20, deadline=None)
    def test_round_robin_arbitration_preserves_results(self, source):
        config = CONFIGS["baseline"].with_arbitration("round-robin")
        expected = interpret(source)
        compiled = compile_program(source, config, mode="sts")
        result = run_program(compiled.program, config)
        assert result.read_symbol("IARR") == expected.read_symbol("IARR")
