"""Performance-layer properties: the parallel harness and the
simulator's skip-ahead fast path are pure accelerations — neither may
change a single reported number.

* serial vs ``workers=4`` process-pool fan-out: identical cycle counts
  and statistics for every paper benchmark in coupled mode;
* fast-forward on vs off: identical cycle counts and statistics, across
  randomly drawn machine configurations (hypothesis).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import baseline, compile_program, run_program
from repro.experiments.runner import Harness, RunSpec
from repro.machine.memory import MemorySpec
from repro.programs.suite import BENCHMARK_ORDER
from repro.sim.opcache import OpCacheSpec

COUPLED_SUITE = [RunSpec(name, "coupled") for name in BENCHMARK_ORDER]


class TestSerialParallelEquivalence:
    def test_workers4_bit_identical_to_serial(self):
        serial = Harness(compile_cache=False).run_many(COUPLED_SUITE)
        parallel = Harness(compile_cache=False).run_many(COUPLED_SUITE,
                                                         workers=4)
        for expected, got in zip(serial, parallel):
            assert got.benchmark == expected.benchmark
            assert got.cycles == expected.cycles
            assert got.stats.summary() == expected.stats.summary()
            assert got.verified

    def test_disk_cache_does_not_change_results(self, tmp_path):
        from repro.compiler import CompileCache
        cold = Harness(compile_cache=CompileCache(str(tmp_path)))
        warm = Harness(compile_cache=CompileCache(str(tmp_path)))
        plain = Harness(compile_cache=False)
        specs = COUPLED_SUITE[:2]
        for harness in (cold, warm):
            for expected, got in zip(plain.run_many(specs),
                                     harness.run_many(specs)):
                assert got.cycles == expected.cycles
                assert got.stats.summary() == expected.stats.summary()
        assert warm.disk_cache.hits > 0


class TestFastForwardEquivalence:
    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_suite_identical_with_and_without_skip(self, name):
        fast = Harness(fast_forward=True, compile_cache=False)
        slow = Harness(fast_forward=False, compile_cache=False)
        a = fast.run(name, "coupled")
        b = slow.run(name, "coupled")
        assert a.cycles == b.cycles
        assert a.stats.summary() == b.stats.summary()

    @settings(max_examples=12, deadline=None)
    @given(
        hit_latency=st.integers(min_value=1, max_value=8),
        miss_rate=st.sampled_from([0.0, 0.25, 1.0]),
        penalty=st.integers(min_value=1, max_value=60),
        seed=st.integers(min_value=0, max_value=2**16),
        arbitration=st.sampled_from(["priority", "round-robin"]),
        opcache_penalty=st.sampled_from([None, 3, 11]),
    )
    def test_random_configs_identical(self, hit_latency, miss_rate,
                                      penalty, seed, arbitration,
                                      opcache_penalty):
        spec = MemorySpec("rand", hit_latency=hit_latency,
                          miss_rate=miss_rate, miss_penalty_min=1,
                          miss_penalty_max=penalty)
        config = baseline().with_memory(spec).with_seed(seed) \
                           .with_arbitration(arbitration)
        if opcache_penalty is not None:
            config = config.with_op_cache(
                OpCacheSpec(capacity=8, fill_penalty=opcache_penalty))
        compiled = compile_program(THREADED_SOURCE, config,
                                   mode="coupled")
        fast = run_program(compiled.program, config, overrides=INPUT,
                           fast_forward=True)
        slow = run_program(compiled.program, config, overrides=INPUT,
                           fast_forward=False)
        assert fast.cycles == slow.cycles
        assert fast.stats.summary() == slow.stats.summary()
        assert fast.read_symbol("B") == slow.read_symbol("B")


THREADED_SOURCE = """
(program
  (const N 5)
  (global A N)
  (global B N)
  (global done N :int :empty)
  (kernel work (i)
    (let ((x (aref A i)))
      (aset! B i (+ (* x x) 1.0)))
    (aset-ef! done i 1))
  (main
    (forall (i 0 N) (work i))
    (for (i 0 N)
      (sync (aref-ff done i)))))
"""

INPUT = {"A": [0.5, -1.5, 2.0, 3.25, -0.75]}
