"""Sweep-harness invariants for Harness.run_many: the same spec list
must yield the same results — keyed to the right spec, in spec order,
bit-identical to a one-at-a-time serial harness — no matter how the
work is scheduled (serial, process pool, batch lane bundles), how the
specs are ordered, or how many duplicates the list carries.

These are the guarantees the bundle planner must not bend: grouping
seeded variants into lockstep lanes, peeling divergent lanes to the
scalar kernel, fanning one pooled bundle back out into per-lane cells,
and serving duplicate requesters from a single simulation are all
scheduling details that must be invisible in the returned list.
"""

import random

import pytest

from repro.errors import CellFailure, ConfigError
from repro.experiments.runner import Harness, RunSpec

pytest.importorskip("numpy")

#: Two bundles' worth of seeded variants plus a seedless singleton and
#: a second benchmark: exercises bundle grouping, the singleton path,
#: and cross-benchmark separation in one list.
SPECS = (
    [RunSpec("matrix", "coupled", seed=seed) for seed in (1, 2, 3)]
    + [RunSpec("fft", "seq", seed=seed) for seed in (1, 2)]
    + [RunSpec("matrix", "seq")]
)


def _reference():
    """One-at-a-time serial runs: the semantics every scheduling
    strategy must reproduce."""
    harness = Harness()
    return harness, [harness.run(s.benchmark, s.mode, seed=s.seed)
                     for s in SPECS]


def _same_cell(got, want):
    assert got.benchmark == want.benchmark
    assert got.mode == want.mode
    assert got.cycles == want.cycles
    assert got.verified == want.verified
    assert got.stats.summary() == want.stats.summary()


@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize("backend", [None, "batch"])
def test_results_in_spec_order_any_schedule(workers, backend):
    __, want = _reference()
    harness = Harness()
    got = harness.run_many(SPECS, workers=workers, backend=backend)
    assert len(got) == len(SPECS)
    for spec, g, w in zip(SPECS, got, want):
        assert g.benchmark == spec.benchmark and g.mode == spec.mode
        _same_cell(g, w)


@pytest.mark.parametrize("backend", [None, "batch"])
def test_shuffled_specs_permute_results_identically(backend):
    __, want = _reference()
    order = list(range(len(SPECS)))
    random.Random(7).shuffle(order)
    harness = Harness()
    got = harness.run_many([SPECS[i] for i in order], backend=backend)
    for pos, i in enumerate(order):
        _same_cell(got[pos], want[i])


@pytest.mark.parametrize("backend", [None, "batch"])
def test_duplicates_share_one_simulation(backend):
    harness = Harness()
    specs = SPECS + SPECS[:3]            # three in-flight duplicates
    got = harness.run_many(specs, backend=backend)
    assert harness.deduped_in_flight == 3
    assert harness.deduped_cached == 0
    for dup, orig in zip(got[len(SPECS):], got[:3]):
        assert dup is orig               # served, not re-simulated
    # A second sweep over the same specs hits the run cache instead.
    again = harness.run_many(SPECS, backend=backend)
    assert harness.deduped_cached == len(SPECS)
    for g, w in zip(again, got):
        assert g is w


def test_batch_marks_bundled_lanes():
    harness = Harness()
    got = harness.run_many(SPECS, backend="batch")
    bundled = [r for r in got if r.backend.startswith("batch")]
    solo = [r for r in got if r.backend == "scalar"]
    # The two seeded groups bundle (3 + 2 lanes); the seedless
    # singleton stays scalar.
    assert sorted(r.lanes for r in bundled) == [2, 2, 3, 3, 3]
    assert len(solo) == 1 and solo[0].lanes == 1
    for r in bundled:
        assert r.peeled_lanes < r.lanes


def test_tagged_specs_never_bundle():
    harness = Harness()
    specs = [RunSpec("matrix", "coupled", tag="a", seed=1),
             RunSpec("matrix", "coupled", tag="b", seed=2)]
    got = harness.run_many(specs, backend="batch")
    assert [r.backend for r in got] == ["scalar", "scalar"]


def test_collect_reports_failures_per_lane():
    harness = Harness(max_cycles=30)     # every cell dies on budget
    got = harness.run_many(SPECS[:3], backend="batch",
                           on_error="collect")
    assert len(got) == 3
    for spec, cell in zip(SPECS[:3], got):
        assert isinstance(cell, CellFailure)
        assert not cell.ok
        assert cell.benchmark == spec.benchmark
        assert cell.mode == spec.mode


def test_bad_backend_rejected():
    harness = Harness()
    with pytest.raises(ConfigError):
        harness.run_many(SPECS[:2], backend="vector")


def test_batch_refuses_sanitizer():
    harness = Harness(sanitize=True)
    with pytest.raises(ConfigError):
        harness.run_many(SPECS[:2], backend="batch")
