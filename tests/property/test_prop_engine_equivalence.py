"""Engine equivalence: the event-driven kernel must be *bit-identical*
to the scan kernel on every architecturally visible quantity — cycle
counts, the full statistics record, final memory contents, and presence
bits — across every benchmark x mode cell, under fault injection, with
the skip-ahead fast path on or off, and through snapshot/restore
round-trips taken mid-run."""

import pytest

from repro import compile_program
from repro.experiments.paper import MODE_ORDER
from repro.machine import baseline
from repro.programs import get_benchmark
from repro.programs.suite import BENCHMARK_ORDER
from repro.sim import EventNode, FaultPlan, Node, make_node, run_program


def _cells():
    for benchmark in BENCHMARK_ORDER:
        bench = get_benchmark(benchmark)
        for mode in MODE_ORDER:
            if mode in bench.modes:
                yield benchmark, mode


def _run_both(benchmark, mode, mutate=None, fast_forward=True):
    bench = get_benchmark(benchmark)
    inputs = bench.make_inputs(1)
    config = baseline()
    if mutate is not None:
        config = mutate(config)
    compiled = compile_program(bench.source(mode), config, mode=mode)
    results = {}
    for engine in ("scan", "event"):
        results[engine] = run_program(compiled.program,
                                      config.with_engine(engine),
                                      overrides=inputs,
                                      fast_forward=fast_forward)
    return results["scan"], results["event"]


def _assert_identical(scan, event):
    assert event.cycles == scan.cycles
    scan_stats = dict(scan.stats.__dict__)
    event_stats = dict(event.stats.__dict__)
    for key in sorted(set(scan_stats) | set(event_stats)):
        assert event_stats.get(key) == scan_stats.get(key), \
            "stats.%s diverged: scan=%r event=%r" \
            % (key, scan_stats.get(key), event_stats.get(key))
    assert event.memory._values == scan.memory._values
    assert event.memory._empty == scan.memory._empty


@pytest.mark.parametrize("bench_name,mode", list(_cells()))
def test_every_benchmark_mode_is_identical(bench_name, mode):
    scan, event = _run_both(bench_name, mode)
    _assert_identical(scan, event)


@pytest.mark.parametrize("bench_name,mode", [("matrix", "coupled"),
                                            ("fft", "coupled")])
def test_identical_under_fault_injection(bench_name, mode):
    def faulty(config):
        return config.with_faults(FaultPlan.random(7, config, rate=3.0,
                                                   horizon=4000))
    scan, event = _run_both(bench_name, mode, mutate=faulty)
    _assert_identical(scan, event)


@pytest.mark.parametrize("scheme", ["shared-bus", "single-port"])
def test_identical_under_restricted_interconnect(scheme):
    # Exercises the event kernel's arbitrated (non-direct) writeback
    # path, where entries can wait cycles for a port.
    scan, event = _run_both(
        "matrix", "coupled", mutate=lambda c: c.with_interconnect(scheme))
    _assert_identical(scan, event)


def test_identical_without_fast_forward():
    scan, event = _run_both("matrix", "coupled", fast_forward=False)
    _assert_identical(scan, event)


def test_identical_under_round_robin_arbitration():
    scan, event = _run_both(
        "fft", "coupled",
        mutate=lambda c: c.with_arbitration("round-robin"))
    _assert_identical(scan, event)


class TestSnapshotRestore:
    """Mid-run checkpoints under the event engine resume bit-identically
    — on the original node, and on a node restored from the snapshot
    (which must dispatch back to the event kernel)."""

    def _paused_node(self, config, pause_at=300):
        bench = get_benchmark("fft")
        inputs = bench.make_inputs(1)
        compiled = compile_program(bench.source("coupled"), config,
                                   mode="coupled")
        node = make_node(config)
        assert node.run(compiled.program, overrides=inputs,
                        pause_at=pause_at) is None
        full = run_program(compiled.program, config, overrides=inputs)
        return node, full

    def test_event_snapshot_roundtrip(self):
        config = baseline().with_engine("event")
        node, full = self._paused_node(config)
        snap = node.snapshot()
        restored = Node.restore(snap)
        assert isinstance(restored, EventNode)
        _assert_identical(full, restored.resume())
        _assert_identical(full, node.resume())

    def test_event_snapshot_roundtrip_with_faults(self):
        config = baseline().with_engine("event")
        config = config.with_faults(FaultPlan.random(7, config, rate=3.0,
                                                     horizon=4000))
        node, full = self._paused_node(config)
        restored = Node.restore(node.snapshot())
        assert isinstance(restored, EventNode)
        _assert_identical(full, restored.resume())

    def test_scan_snapshot_still_restores_scan(self):
        config = baseline().with_engine("scan")
        node, full = self._paused_node(config)
        restored = Node.restore(node.snapshot())
        assert type(restored) is Node
        _assert_identical(full, restored.resume())
