"""Engine equivalence: the event-driven kernel — with superblock
fusion on and off — and the batch lane engine must be *bit-identical*
to the scan kernel on every architecturally visible quantity: cycle
counts, the full statistics record, final memory contents, and
presence bits.  Checked four ways (scan / event without fusion / event
with fusion / one lane of a lockstep batch bundle) across every
benchmark x mode cell, under fault injection, over restricted
interconnects, with the skip-ahead fast path on or off, and through
snapshot/restore round-trips taken mid-run (including mid-superblock,
which must force de-fusion at the pause boundary).  TestBatchPeel
additionally pins the peel discipline: lanes that diverge mid-run —
on branch direction, memory address, or a lane-local arithmetic trap,
with or without a fault plan — peel off to the scalar kernel while
every surviving lane stays bit-identical."""

import pytest

from repro import compile_program
from repro.experiments.paper import MODE_ORDER
from repro.machine import baseline
from repro.programs import get_benchmark
from repro.programs.suite import BENCHMARK_ORDER
from repro.sim import EventNode, FaultPlan, Node, make_node, run_program
from repro.sim.batch import run_batch


def _cells():
    for benchmark in BENCHMARK_ORDER:
        bench = get_benchmark(benchmark)
        for mode in MODE_ORDER:
            if mode in bench.modes:
                yield benchmark, mode


#: The three kernels under test, as config transforms.
ENGINES = (
    ("scan", lambda c: c.with_engine("scan")),
    ("event", lambda c: c.with_engine("event").with_fusion(False)),
    ("fused", lambda c: c.with_engine("event").with_fusion(True)),
)


def _batch_lane0(program, config, lane_inputs, fast_forward=True):
    """Run ``lane_inputs`` as one lockstep bundle and return lane 0's
    SimResult — re-run on the scalar kernel if lane 0 peeled (the same
    merge-back the harness performs), so the four-way comparison
    always has a batch-backend result to check."""
    outcome = run_batch(program, config, lane_inputs,
                        fast_forward=fast_forward)
    if outcome.results[0] is not None:
        return outcome.results[0]
    return run_program(program, config, overrides=lane_inputs[0],
                       fast_forward=fast_forward)


def _run_all(benchmark, mode, mutate=None, fast_forward=True):
    bench = get_benchmark(benchmark)
    inputs = bench.make_inputs(1)
    config = baseline()
    if mutate is not None:
        config = mutate(config)
    compiled = compile_program(bench.source(mode), config, mode=mode)
    results = {}
    for name, select in ENGINES:
        results[name] = run_program(compiled.program, select(config),
                                    overrides=inputs,
                                    fast_forward=fast_forward)
    # Fourth way: the same cell as lane 0 of a two-lane batch bundle
    # (lane 1 carries different input data, so the value plane really
    # is vectorized and any cross-lane contamination would surface).
    results["batch"] = _batch_lane0(
        compiled.program,
        config.with_engine("event").with_fusion(False),
        [inputs, bench.make_inputs(2)], fast_forward=fast_forward)
    return results


def _assert_identical(reference, other, label="event"):
    assert other.cycles == reference.cycles
    ref_stats = dict(reference.stats.__dict__)
    other_stats = dict(other.stats.__dict__)
    from repro.sim.stats import ENGINE_STAT_FIELDS
    for key in sorted(set(ref_stats) | set(other_stats)):
        if key in ENGINE_STAT_FIELDS:
            # Engine bookkeeping, not an architectural quantity: the
            # fused kernel counts its superblock dispatches and
            # de-fusion reasons, the scan kernel never fuses at all.
            continue
        assert other_stats.get(key) == ref_stats.get(key), \
            "stats.%s diverged: reference=%r %s=%r" \
            % (key, ref_stats.get(key), label, other_stats.get(key))
    assert other.memory._values == reference.memory._values
    assert other.memory._empty == reference.memory._empty


def _assert_four_way(results):
    _assert_identical(results["scan"], results["event"], "event")
    _assert_identical(results["scan"], results["fused"], "fused")
    _assert_identical(results["scan"], results["batch"], "batch")


@pytest.mark.parametrize("bench_name,mode", list(_cells()))
def test_every_benchmark_mode_is_identical(bench_name, mode):
    _assert_four_way(_run_all(bench_name, mode))


@pytest.mark.parametrize("bench_name,mode", [("matrix", "coupled"),
                                            ("fft", "coupled")])
def test_identical_under_fault_injection(bench_name, mode):
    def faulty(config):
        return config.with_faults(FaultPlan.random(7, config, rate=3.0,
                                                   horizon=4000))
    _assert_four_way(_run_all(bench_name, mode, mutate=faulty))


def test_identical_under_fault_injection_single_threaded():
    # Single-threaded cells are where fusion would fire; a fault plan
    # must force the word-by-word path without drift.
    def faulty(config):
        return config.with_faults(FaultPlan.random(11, config, rate=2.0,
                                                   horizon=8000))
    _assert_four_way(_run_all("matrix", "seq", mutate=faulty))


@pytest.mark.parametrize("scheme", ["shared-bus", "single-port"])
def test_identical_under_restricted_interconnect(scheme):
    # Exercises the event kernel's arbitrated (non-direct) writeback
    # path, where entries can wait cycles for a port; fusion must stay
    # dormant (its guards require the fully connected network).
    _assert_four_way(_run_all(
        "matrix", "coupled", mutate=lambda c: c.with_interconnect(scheme)))


def test_identical_without_fast_forward():
    _assert_four_way(_run_all("matrix", "coupled", fast_forward=False))


def test_identical_without_fast_forward_single_threaded():
    _assert_four_way(_run_all("lud", "seq", fast_forward=False))


def test_identical_under_round_robin_arbitration():
    _assert_four_way(_run_all(
        "fft", "coupled",
        mutate=lambda c: c.with_arbitration("round-robin")))


def test_identical_under_round_robin_single_threaded():
    # Fused dispatch must leave the round-robin rotation pointer
    # exactly where the interpreted path would.
    _assert_four_way(_run_all(
        "lud", "seq", mutate=lambda c: c.with_arbitration("round-robin")))


def test_identical_with_operation_cache():
    from repro.sim.opcache import OpCacheSpec
    _assert_four_way(_run_all(
        "lud", "seq",
        mutate=lambda c: c.with_op_cache(OpCacheSpec(capacity=8,
                                                     fill_penalty=4))))


class TestInterleavedFusion:
    """The interleaved (multithreaded) superblock paths must actually
    fire on the cells they target — a guard regression that silently
    turns fusion off would otherwise keep every equivalence test green
    while losing the speedup."""

    def _fused_node(self, benchmark, mode, mutate=None):
        bench = get_benchmark(benchmark)
        inputs = bench.make_inputs(1)
        config = baseline().with_engine("event").with_fusion(True)
        if mutate is not None:
            config = mutate(config)
        compiled = compile_program(bench.source(mode), config, mode=mode)
        node = make_node(config)
        node.run(compiled.program, overrides=inputs)
        return node

    @pytest.mark.parametrize("bench_name,mode",
                             [("lud", "tpe"), ("lud", "coupled")])
    def test_multithreaded_entry_fires_and_matches(self, bench_name,
                                                   mode):
        """Cells with several runnable threads must dispatch compiled
        interleavings (not just single-thread blocks) and still match
        the scan kernel bit for bit."""
        _assert_four_way(_run_all(bench_name, mode))
        node = self._fused_node(bench_name, mode)
        assert node.stats.fused_dispatches > 0
        # The interleaved table itself must have fired: at least one
        # multi-slot alignment compiled and was dispatched.
        assert node._mt_hits > 0

    def test_busy_memory_spans_fire(self):
        """Spans must dispatch while timed memory completions are in
        flight beyond the span end (the old guard demanded a fully
        idle memory system, which never holds on these cells)."""
        node = self._fused_node("lud", "coupled")
        assert node._mt_hits > 0
        assert node.stats.fused_dispatches > 0
        _assert_four_way(_run_all("lud", "coupled"))

    def test_round_robin_interleaving_identical(self):
        """Round-robin rotation is baked into the compiled schedule;
        the resume point must land exactly where the interpreted scan
        would leave it."""
        _assert_four_way(_run_all(
            "lud", "tpe",
            mutate=lambda c: c.with_arbitration("round-robin")))
        node = self._fused_node(
            "lud", "tpe",
            mutate=lambda c: c.with_arbitration("round-robin"))
        assert node._mt_hits > 0

    @pytest.mark.parametrize("pause_at", [400, 2001])
    def test_mid_span_snapshot_defuses_multithreaded(self, pause_at):
        """Pausing inside a multithreaded run de-fuses at the pause
        boundary (the pause clamp rejects any span crossing it), and
        both the original and a restored copy resume bit-identically."""
        fused = baseline().with_engine("event").with_fusion(True)
        plain = fused.with_fusion(False)
        bench = get_benchmark("lud")
        inputs = bench.make_inputs(1)
        compiled = compile_program(bench.source("coupled"), fused,
                                   mode="coupled")
        node = make_node(fused)
        assert node.run(compiled.program, overrides=inputs,
                        pause_at=pause_at) is None
        assert node.cycle == pause_at
        reference = run_program(
            compile_program(bench.source("coupled"), plain,
                            mode="coupled").program,
            plain, overrides=inputs)
        restored = Node.restore(node.snapshot())
        assert isinstance(restored, EventNode)
        _assert_identical(reference, restored.resume(), "restored")
        _assert_identical(reference, node.resume(), "resumed")


class TestPauseClampBoundary:
    """The pause clamp is exact, for both dispatch paths: a superblock
    whose last simulated cycle is ``pause_at - 1`` still fuses, while
    the same block with the pause one cycle earlier is rejected and the
    kernel falls back word-by-word so the run stops on exactly the
    requested cycle.  An off-by-one in either direction would show up
    here: too strict and fusion silently sheds spans near any pause,
    too loose and a pause lands mid-span."""

    CASES = [("lud", "seq", "_try_fuse"),
             ("lud", "tpe", "_try_fuse_mt")]

    def _spied_run(self, bench_name, mode, method, pause_at=None):
        """Run fused, recording every successful dispatch as a
        ``(entry_cycle, end_cycle)`` pair (the closure returns the
        span's last simulated cycle)."""
        config = baseline().with_engine("event").with_fusion(True)
        bench = get_benchmark(bench_name)
        compiled = compile_program(bench.source(mode), config, mode=mode)
        node = make_node(config)
        dispatches = []
        orig = getattr(node, method)

        def spy(cycle, max_cycles, watchdog_cycles, pause):
            end = orig(cycle, max_cycles, watchdog_cycles, pause)
            if end is not None:
                dispatches.append((cycle, end))
            return end

        setattr(node, method, spy)
        node.run(compiled.program, overrides=bench.make_inputs(1),
                 pause_at=pause_at)
        return node, dispatches

    def _reference(self, bench_name, mode):
        plain = baseline().with_engine("event").with_fusion(False)
        bench = get_benchmark(bench_name)
        compiled = compile_program(bench.source(mode), plain, mode=mode)
        return run_program(compiled.program, plain,
                           overrides=bench.make_inputs(1))

    @pytest.mark.parametrize("bench_name,mode,method", CASES)
    def test_span_ending_at_pause_minus_one_fuses(self, bench_name, mode,
                                                  method):
        __, dispatches = self._spied_run(bench_name, mode, method)
        assert dispatches, "no fused dispatches to anchor the boundary"
        c0, end0 = dispatches[len(dispatches) // 2]
        # Spans never overlap, so every earlier dispatch ends before c0
        # and is untouched by this pause; the chosen span's last cycle
        # is exactly pause_at - 1 and must still dispatch.
        node, paused = self._spied_run(bench_name, mode, method,
                                       pause_at=end0 + 1)
        assert (c0, end0) in paused
        assert node.cycle == end0 + 1
        _assert_identical(self._reference(bench_name, mode),
                          node.resume(), "resumed")

    @pytest.mark.parametrize("bench_name,mode,method", CASES)
    def test_span_crossing_pause_rejected(self, bench_name, mode, method):
        __, dispatches = self._spied_run(bench_name, mode, method)
        assert dispatches
        c0, end0 = dispatches[len(dispatches) // 2]
        # pause_at == end0: the span's last cycle would land on the
        # pause, so the dispatch must be rejected and the word-by-word
        # fallback must stop on exactly the requested cycle.
        node, paused = self._spied_run(bench_name, mode, method,
                                       pause_at=end0)
        assert (c0, end0) not in paused
        assert all(end < end0 for __, end in paused)
        assert node.cycle == end0
        _assert_identical(self._reference(bench_name, mode),
                          node.resume(), "resumed")


class TestSnapshotRestore:
    """Mid-run checkpoints under the event engine resume bit-identically
    — on the original node, and on a node restored from the snapshot
    (which must dispatch back to the event kernel)."""

    def _paused_node(self, config, pause_at=300, benchmark="fft",
                     mode="coupled"):
        bench = get_benchmark(benchmark)
        inputs = bench.make_inputs(1)
        compiled = compile_program(bench.source(mode), config, mode=mode)
        node = make_node(config)
        assert node.run(compiled.program, overrides=inputs,
                        pause_at=pause_at) is None
        full = run_program(compiled.program, config, overrides=inputs)
        return node, full

    def test_event_snapshot_roundtrip(self):
        config = baseline().with_engine("event")
        node, full = self._paused_node(config)
        snap = node.snapshot()
        restored = Node.restore(snap)
        assert isinstance(restored, EventNode)
        _assert_identical(full, restored.resume())
        _assert_identical(full, node.resume())

    def test_event_snapshot_roundtrip_with_faults(self):
        config = baseline().with_engine("event")
        config = config.with_faults(FaultPlan.random(7, config, rate=3.0,
                                                     horizon=4000))
        node, full = self._paused_node(config)
        restored = Node.restore(node.snapshot())
        assert isinstance(restored, EventNode)
        _assert_identical(full, restored.resume())

    def test_scan_snapshot_still_restores_scan(self):
        config = baseline().with_engine("scan")
        node, full = self._paused_node(config)
        restored = Node.restore(node.snapshot())
        assert type(restored) is Node
        _assert_identical(full, restored.resume())

    @pytest.mark.parametrize("pause_at", [97, 1000, 5001])
    def test_snapshot_mid_superblock_forces_defusion(self, pause_at):
        """Pausing at a cycle a superblock would span must de-fuse at
        the boundary: the kernel falls back word-by-word so the pause
        lands on exactly the requested cycle, and resuming (original or
        restored copy, fusion re-enabled) matches the fusion-off run
        bit for bit."""
        fused = baseline().with_engine("event").with_fusion(True)
        plain = fused.with_fusion(False)
        node, full = self._paused_node(fused, pause_at=pause_at,
                                       benchmark="lud", mode="seq")
        reference = run_program(
            compile_program(get_benchmark("lud").source("seq"), plain,
                            mode="seq").program,
            plain, overrides=get_benchmark("lud").make_inputs(1))
        assert node.cycle == pause_at
        restored = Node.restore(node.snapshot())
        assert isinstance(restored, EventNode)
        _assert_identical(reference, full, "fused-full")
        _assert_identical(reference, restored.resume(), "restored")
        _assert_identical(reference, node.resume(), "resumed")

    def test_snapshot_mid_superblock_restored_without_fusion(self):
        """A snapshot taken under fusion restores cleanly onto a config
        whose engine still allows fusion but whose run continues
        word-by-word to completion (fusion state is not part of the
        architectural snapshot)."""
        fused = baseline().with_engine("event").with_fusion(True)
        node, full = self._paused_node(fused, pause_at=211,
                                       benchmark="matrix", mode="seq")
        restored = Node.restore(node.snapshot())
        restored._fusion = False      # de-fuse the restored copy only
        _assert_identical(full, restored.resume(), "restored-defused")


class TestBatchPeel:
    """The batch lane engine's peel discipline, pinned on purpose-built
    programs whose lanes *are* divergent: a lane that disagrees with
    the lockstep majority on a branch direction, a memory address, or
    an arithmetic fault must peel off (recorded with its reason and
    cycle), every surviving lane must stay bit-identical to its own
    scalar run, and a peeled lane's scalar re-run must reproduce its
    result — or its error — exactly.  A clean cell must peel nothing
    (the dormancy check: a backend that silently full-peels would pass
    every equivalence test while delivering zero speedup)."""

    BRANCHY = """
    (program
      (const N 4)
      (global A N)
      (global B N)
      (main
        (for (i 0 N)
          (let ((x (aref A i)))
            (if (> x 0.0)
                (aset! B i (* x 2.0))
                (aset! B i (- 0.0 x)))))))
    """

    DIVIDES = """
    (program
      (const N 4)
      (global A N)
      (global B N)
      (main
        (for (i 0 N)
          (aset! B i (/ 1.0 (aref A i))))))
    """

    INDIRECT = """
    (program
      (const N 4)
      (global IDX N :int)
      (global A N)
      (global B N)
      (main
        (for (i 0 N)
          (aset! B i (aref A (aref IDX i))))))
    """

    def _config(self):
        return baseline().with_engine("event").with_fusion(False)

    def _compiled(self, source, config):
        return compile_program(source, config, mode="seq").program

    def _scalar(self, program, config, inputs):
        return run_program(program, config, overrides=inputs)

    def _check_lanes(self, program, config, lane_inputs):
        """Run the bundle and compare every surviving lane against its
        own scalar run; returns the BatchOutcome for peel asserts."""
        outcome = run_batch(program, config, lane_inputs)
        for lane in outcome.lockstep_lanes:
            _assert_identical(self._scalar(program, config,
                                           lane_inputs[lane]),
                              outcome.results[lane],
                              "batch-lane%d" % lane)
        return outcome

    def test_minority_branch_divergence_peels(self):
        config = self._config()
        program = self._compiled(self.BRANCHY, config)
        pos = [1.0, 2.0, 3.0, 4.0]
        lanes = [list(pos) for __ in range(4)]
        lanes[2][1] = -5.0            # lane 2 takes the other side
        lane_inputs = [{"A": a} for a in lanes]
        outcome = self._check_lanes(program, config, lane_inputs)
        assert sorted(outcome.peeled) == [2]
        reason, cycle = outcome.peeled[2]
        assert reason == "branch" and cycle > 0
        assert outcome.lockstep_lanes == [0, 1, 3]
        # Merge-back: the peeled lane's scalar re-run is its own run.
        _assert_identical(self._scalar(program, config, lane_inputs[2]),
                          self._scalar(program, config, lane_inputs[2]),
                          "peeled-rerun")

    def test_two_lane_tie_keeps_lane_zero(self):
        config = self._config()
        program = self._compiled(self.BRANCHY, config)
        lane_inputs = [{"A": [1.0, 2.0, 3.0, 4.0]},
                       {"A": [1.0, -2.0, 3.0, 4.0]}]
        outcome = self._check_lanes(program, config, lane_inputs)
        # A 1-vs-1 vote is a tie; the side containing the lowest live
        # lane wins, so lane 0 must never peel on a two-lane vote.
        assert outcome.lockstep_lanes == [0]
        assert outcome.peeled[1][0] == "branch"

    def test_lane_local_arithmetic_trap_peels_and_reproduces(self):
        from repro.errors import SimulationError
        config = self._config()
        program = self._compiled(self.DIVIDES, config)
        lane_inputs = [{"A": [1.0, 2.0, 4.0, 5.0]},
                       {"A": [1.0, 0.0, 4.0, 5.0]},   # traps at i=1
                       {"A": [2.0, 2.0, 4.0, 5.0]}]
        outcome = self._check_lanes(program, config, lane_inputs)
        assert sorted(outcome.peeled) == [1]
        assert outcome.peeled[1][0] == "fdiv-by-zero"
        assert outcome.lockstep_lanes == [0, 2]
        # The scalar re-run reproduces the trap as the scalar kernel's
        # own error, exactly as a serial Harness.run would fail.
        with pytest.raises(SimulationError):
            self._scalar(program, config, lane_inputs[1])

    def test_address_divergence_peels(self):
        config = self._config()
        program = self._compiled(self.INDIRECT, config)
        base = {"IDX": [0, 1, 2, 3], "A": [10.0, 20.0, 30.0, 40.0]}
        diverged = {"IDX": [0, 3, 2, 1], "A": [10.0, 20.0, 30.0, 40.0]}
        lane_inputs = [dict(base), dict(base), dict(diverged)]
        outcome = self._check_lanes(program, config, lane_inputs)
        assert sorted(outcome.peeled) == [2]
        assert outcome.peeled[2][0] == "mem-address"
        assert outcome.lockstep_lanes == [0, 1]

    def test_divergence_under_fault_plan(self):
        """The acceptance case: lanes that peel mid-run while a fault
        plan perturbs the shared machine timing.  Survivors must still
        be bit-identical to scalar runs under the same plan."""
        config = self._config()
        config = config.with_faults(FaultPlan.random(7, config, rate=2.0,
                                                     horizon=2000))
        program = self._compiled(self.BRANCHY, config)
        pos = [1.0, 2.0, 3.0, 4.0]
        lanes = [list(pos) for __ in range(4)]
        lanes[1][2] = -7.0
        lane_inputs = [{"A": a} for a in lanes]
        outcome = self._check_lanes(program, config, lane_inputs)
        assert sorted(outcome.peeled) == [1]
        assert outcome.peeled[1][0] == "branch"
        assert outcome.lockstep_lanes == [0, 2, 3]

    def test_clean_cell_peels_nothing(self):
        """Dormancy check on a real benchmark cell: divergence-free
        lanes must all finish in lockstep, with the lane counters on
        the stats record and zero peels."""
        bench = get_benchmark("matrix")
        config = self._config()
        program = compile_program(bench.source("coupled"), config,
                                  mode="coupled").program
        lane_inputs = [bench.make_inputs(seed) for seed in (1, 2, 3, 4)]
        outcome = self._check_lanes(program, config, lane_inputs)
        assert not outcome.peeled
        assert outcome.lockstep_lanes == [0, 1, 2, 3]
        stats = outcome.results[0].stats
        assert stats.batch_lanes == 4
        assert stats.batch_peeled_lanes == 0
