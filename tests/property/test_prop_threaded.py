"""Differential property testing of *threaded* programs: random
parallel-map workloads (disjoint strided writes + flag joins) must
match the reference interpreter in TPE and Coupled modes, under random
memory latencies."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import compile_program, interpret, run_program
from repro.machine import baseline
from repro.machine.memory import MemorySpec

ARRAY = 12


@st.composite
def _exprs(draw, depth=0):
    """A float expression over the worker's index variable ``i``, its
    thread id ``t``, and the input array IN."""
    choices = ["lit", "i", "t", "load"]
    if depth < 3:
        choices += ["add", "sub", "mul"]
    kind = draw(st.sampled_from(choices))
    if kind == "lit":
        return repr(float(draw(st.floats(min_value=-4, max_value=4,
                                         allow_nan=False))))
    if kind == "i":
        return "(float i)"
    if kind == "t":
        return "(float t)"
    if kind == "load":
        return "(aref IN (& (+ i %d) %d))" % (draw(st.integers(0, 4)),
                                              ARRAY - 1)
    op = {"add": "+", "sub": "-", "mul": "*"}[kind]
    return "(%s %s %s)" % (op, draw(_exprs(depth=depth + 1)),
                           draw(_exprs(depth=depth + 1)))


@st.composite
def worker_bodies(draw):
    # Guarantee the output depends on the index so bugs in striding or
    # joining are visible.
    return "(+ (aref IN i) (* 0.5 %s))" % draw(_exprs())


@st.composite
def threaded_programs(draw):
    n_workers = draw(st.integers(2, 4))
    body = draw(worker_bodies())
    post = draw(st.sampled_from([
        "",                                        # plain join
        "(for (i 0 %d) (aset! OUT i (* (aref OUT i) 2.0)))" % ARRAY,
    ]))
    return """
(program
  (const N %d)
  (const NW %d)
  (global IN N)
  (global OUT N)
  (global done NW :int :empty)
  (kernel work (t)
    (let ((i t))
      (while (< i N)
        (aset! OUT i %s)
        (set! i (+ i NW))))
    (aset-ef! done t 1))
  (main
    (forall (t 0 NW) (work t))
    (for (t 0 NW)
      (sync (aref-fe done t)))
    %s))
""" % (ARRAY, n_workers, body, post)


INPUT = {"IN": [0.5 * i - 2.0 for i in range(ARRAY)]}


class TestThreadedDifferential:
    @given(source=threaded_programs(),
           mode=st.sampled_from(["tpe", "coupled"]))
    @settings(max_examples=40, deadline=None)
    def test_threaded_matches_interpreter(self, source, mode):
        config = baseline()
        expected = interpret(source, overrides=INPUT)
        compiled = compile_program(source, config, mode=mode)
        result = run_program(compiled.program, config, overrides=INPUT)
        assert result.read_symbol("OUT") == expected.read_symbol("OUT"), \
            source

    @given(source=threaded_programs(), seed=st.integers(0, 999))
    @settings(max_examples=15, deadline=None)
    def test_threaded_correct_under_misses(self, source, seed):
        spec = MemorySpec("m", miss_rate=0.15, miss_penalty_min=3,
                          miss_penalty_max=30)
        config = baseline().with_memory(spec).with_seed(seed)
        expected = interpret(source, overrides=INPUT)
        compiled = compile_program(source, config, mode="coupled")
        result = run_program(compiled.program, config, overrides=INPUT)
        assert result.read_symbol("OUT") == expected.read_symbol("OUT")
