"""Static invariants of every emitted schedule, over random programs:

* no instruction word contains an intra-word dependence (operations in
  one row must be executable simultaneously — paper, Figure 1);
* at most one branch-unit operation per word;
* every non-fork source register is local to its unit's cluster;
* at most two destinations per operation.

These hold for *any* legal compiler output, so they are checked on the
random-program generator of the differential suite.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import compile_program
from repro.isa.instruction import parse_unit_id
from repro.isa.operations import UnitClass
from repro.machine import baseline, unit_mix

from tests.property.test_prop_differential import programs

CONFIGS = [baseline(), unit_mix(2, 2)]


def check_program(program):
    for thread in program.threads.values():
        for word in thread.instructions:
            per_op = []
            control_ops = 0
            for uid, op in word:
                cluster, kind, __ = parse_unit_id(uid)
                assert op.spec.unit is kind
                if kind is UnitClass.BRU:
                    control_ops += 1
                assert len(op.dests) <= 2
                reads = set()
                for src in op.source_regs():
                    if op.spec.is_fork:
                        continue
                    assert src.cluster == cluster, \
                        "remote read %s at %s" % (src, uid)
                    reads.add(src)
                per_op.append((reads, set(op.dests)))
            assert control_ops <= 1
            # Intra-word independence: no operation may read a register
            # another operation in the same word writes, nor may two
            # operations write the same register (issue order within a
            # word is unspecified).  An operation reading its own
            # destination is fine: sources are captured at issue.
            for index, (reads, writes) in enumerate(per_op):
                for other_index, (__, other_writes) in enumerate(per_op):
                    if index == other_index:
                        continue
                    assert not (reads & other_writes), \
                        "intra-word dependence in %s" % word
                    assert not (writes & other_writes), \
                        "intra-word output conflict in %s" % word


class TestScheduleInvariants:
    @given(source=programs(),
           mode=st.sampled_from(["seq", "sts"]),
           config_index=st.integers(0, len(CONFIGS) - 1))
    @settings(max_examples=50, deadline=None)
    def test_random_programs_schedule_legally(self, source, mode,
                                              config_index):
        compiled = compile_program(source, CONFIGS[config_index],
                                   mode=mode)
        check_program(compiled.program)

    def test_all_benchmarks_schedule_legally(self):
        from repro.programs import BENCHMARKS
        config = baseline()
        for name, bench in BENCHMARKS.items():
            for mode in bench.modes:
                compiled = compile_program(bench.source(mode), config,
                                           mode=mode)
                check_program(compiled.program)
