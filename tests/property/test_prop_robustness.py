"""Robustness properties: determinism, correctness under random memory
latencies, restricted interconnects, thread interleavings, and injected
faults."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import ReproError, compile_program, run_program
from repro.machine import CommScheme, baseline
from repro.machine.memory import MemorySpec
from repro.programs import get_benchmark
from repro.sim.faults import FaultEvent, FaultPlan

THREADED_SOURCE = """
(program
  (const N 5)
  (global A N)
  (global B N)
  (global done N :int :empty)
  (kernel work (i)
    (let ((x (aref A i)))
      (aset! B i (+ (* x x) 1.0)))
    (aset-ef! done i 1))
  (main
    (forall (i 0 N) (work i))
    (for (i 0 N)
      (sync (aref-ff done i)))))
"""

INPUT = {"A": [0.5, -1.5, 2.0, 3.25, -0.75]}
EXPECTED = [x * x + 1.0 for x in INPUT["A"]]


def run_threaded(config):
    compiled = compile_program(THREADED_SOURCE, config, mode="coupled")
    return run_program(compiled.program, config, overrides=INPUT)


class TestDeterminism:
    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_same_seed_same_cycles(self, seed):
        spec = MemorySpec("m", miss_rate=0.2, miss_penalty_min=5,
                          miss_penalty_max=40)
        config = baseline().with_memory(spec).with_seed(seed)
        a = run_threaded(config)
        b = run_threaded(config)
        assert a.cycles == b.cycles
        assert a.stats.summary() == b.stats.summary()


class TestLatencyRobustness:
    @given(seed=st.integers(0, 10_000),
           miss_rate=st.floats(min_value=0.0, max_value=0.5),
           penalty=st.integers(1, 60))
    @settings(max_examples=25, deadline=None)
    def test_results_independent_of_latency(self, seed, miss_rate,
                                            penalty):
        spec = MemorySpec("rand", miss_rate=miss_rate,
                          miss_penalty_min=1, miss_penalty_max=penalty)
        config = baseline().with_memory(spec).with_seed(seed)
        result = run_threaded(config)
        assert result.read_symbol("B") == EXPECTED


class TestInterconnectRobustness:
    @given(scheme=st.sampled_from(list(CommScheme)),
           arbitration=st.sampled_from(["priority", "round-robin"]))
    @settings(max_examples=10, deadline=None)
    def test_results_independent_of_ports(self, scheme, arbitration):
        config = baseline().with_interconnect(scheme) \
            .with_arbitration(arbitration)
        result = run_threaded(config)
        assert result.read_symbol("B") == EXPECTED

    @given(scheme=st.sampled_from([CommScheme.SINGLE_PORT,
                                   CommScheme.SHARED_BUS]),
           seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_benchmark_correct_under_congestion_and_misses(self, scheme,
                                                           seed):
        bench = get_benchmark("matrix")
        inputs = bench.make_inputs(seed=2)
        spec = MemorySpec("m", miss_rate=0.1, miss_penalty_min=2,
                          miss_penalty_max=25)
        config = baseline().with_interconnect(scheme) \
            .with_memory(spec).with_seed(seed)
        compiled = compile_program(bench.source("coupled"), config,
                                   mode="coupled")
        result = run_program(compiled.program, config, overrides=inputs)
        assert not bench.check(result, inputs)


_UNIT_IDS = tuple(sorted(baseline().unit_by_id))

_fault_events = st.lists(
    st.one_of(
        st.builds(FaultEvent,
                  kind=st.just("unit_offline"),
                  unit=st.sampled_from(_UNIT_IDS),
                  start=st.integers(0, 2000),
                  duration=st.integers(1, 500)),
        st.builds(FaultEvent,
                  kind=st.just("writeback_block"),
                  unit=st.sampled_from(_UNIT_IDS),
                  start=st.integers(0, 2000),
                  duration=st.integers(1, 200)),
        st.builds(FaultEvent,
                  kind=st.just("mem_delay"),
                  start=st.integers(0, 2000),
                  duration=st.integers(1, 500),
                  extra=st.integers(1, 30)),
        st.builds(FaultEvent,
                  kind=st.just("bank_blackout"),
                  start=st.integers(0, 2000),
                  duration=st.integers(1, 200),
                  lo=st.integers(0, 32),
                  hi=st.integers(64, 1024)),
        st.builds(FaultEvent,
                  kind=st.just("presence_stall"),
                  start=st.integers(0, 2000),
                  duration=st.integers(1, 300),
                  extra=st.integers(1, 20)),
    ),
    max_size=6)


class TestFaultResilience:
    @given(seed=st.integers(0, 2**31), rate=st.floats(0.5, 6.0))
    @settings(max_examples=10, deadline=None)
    def test_same_fault_seed_same_cycles(self, seed, rate):
        """Same FaultPlan seed => identical cycle count and stats."""
        plan = FaultPlan.random(seed, baseline(), rate=rate,
                                horizon=3000)
        config = baseline().with_faults(plan)
        a = run_threaded(config)
        b = run_threaded(config)
        assert a.cycles == b.cycles
        assert a.stats.summary() == b.stats.summary()
        assert a.read_symbol("B") == EXPECTED

    @given(events=_fault_events, reroute=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_any_plan_completes_or_raises_structured_error(self, events,
                                                           reroute):
        """An arbitrary fault plan either finishes with correct output
        or raises a structured ReproError — never a hang (the watchdog
        bounds the run) or a bare exception."""
        config = baseline().with_faults(FaultPlan(events,
                                                  reroute=reroute))
        compiled = compile_program(THREADED_SOURCE, config,
                                   mode="coupled")
        try:
            result = run_program(compiled.program, config,
                                 overrides=INPUT, max_cycles=100_000,
                                 watchdog_cycles=3_000)
        except ReproError:
            pass                        # structured failure is allowed
        else:
            assert result.read_symbol("B") == EXPECTED
