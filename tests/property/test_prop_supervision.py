"""Property: a supervised sweep is bit-identical to a serial one, no
matter which cell a worker dies on or how many workers run.  Crash
injection uses the one-shot ``REPRO_CHAOS_WORKER`` sentinel so every
sampled crash site recovers via retry."""

import os

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.experiments.runner import Harness, RunSpec
from repro.experiments.supervision import SupervisorPolicy

SUITE = [("matrix", "seq"), ("matrix", "coupled"),
         ("fft", "coupled"), ("lud", "coupled")]

POLICY = SupervisorPolicy(backoff_base=0.01, backoff_cap=0.05)


def _fingerprint(results):
    return [(r.benchmark, r.mode, r.cycles, r.utilization,
             r.stats.summary()) for r in results]


_SERIAL = None


def serial_fingerprint():
    global _SERIAL
    if _SERIAL is None:
        harness = Harness(compile_cache=False)
        _SERIAL = _fingerprint(
            harness.run_many([RunSpec(b, m) for b, m in SUITE]))
    return _SERIAL


class TestSupervisedEqualsSerial:
    @settings(max_examples=6, deadline=None)
    @given(crash=st.integers(0, len(SUITE) - 1),
           workers=st.integers(2, 3),
           salt=st.integers(0, 2**31))
    def test_bit_identical_under_single_crash(self, crash, workers,
                                              salt, tmp_path_factory):
        benchmark, mode = SUITE[crash]
        sentinel = tmp_path_factory.mktemp("chaos") / ("s%d" % salt)
        os.environ["REPRO_CHAOS_WORKER"] = \
            "%s/%s@%s" % (benchmark, mode, sentinel)
        try:
            harness = Harness(compile_cache=False)
            results = harness.run_many(
                [RunSpec(b, m) for b, m in SUITE],
                workers=workers, policy=POLICY)
        finally:
            del os.environ["REPRO_CHAOS_WORKER"]
        assert _fingerprint(results) == serial_fingerprint()
