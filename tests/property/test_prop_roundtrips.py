"""Property tests: text round-trips for the reader and the assembler."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.compiler.sexpr import read_one, to_text
from repro.isa import asmtext
from repro.isa.instruction import Operation
from repro.isa.operands import Imm, Label, Reg
from repro.isa.operations import UnitClass, all_opcodes

symbols = st.text(alphabet="abcdefghijklmnopqrstuvwxyz!?*+-<>=",
                  min_size=1, max_size=8).filter(
    lambda s: not s.lstrip("+-").replace(".", "").isdigit()
    and s not in ("+", "-"))

atoms = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32)
      .map(lambda f: float(f)),
    symbols.map(lambda s: __import__(
        "repro.compiler.sexpr", fromlist=["Symbol"]).Symbol(s)),
)

forms = st.recursive(atoms, lambda children: st.lists(
    children, min_size=0, max_size=4), max_leaves=20)


class TestSexprRoundtrip:
    @given(forms.filter(lambda f: isinstance(f, list)))
    @settings(max_examples=150)
    def test_print_then_read_is_identity(self, form):
        assert read_one(to_text(form)) == form


regs = st.builds(Reg, st.integers(0, 7), st.integers(0, 63))
imms = st.one_of(
    st.integers(-1000, 1000).map(Imm),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-100, max_value=100).map(Imm))
sources = st.one_of(regs, imms)

_ARITH = [name for name, spec in all_opcodes().items()
          if spec.has_dest and spec.semantics is not None
          and not spec.is_memory]
_LOADS = ["ld", "ld_ff", "ld_fe"]
_STORES = ["st", "st_ff", "st_ef"]


@st.composite
def operations(draw):
    kind = draw(st.sampled_from(["arith", "load", "store", "branch",
                                 "fork"]))
    if kind == "arith":
        name = draw(st.sampled_from(_ARITH))
        spec = all_opcodes()[name]
        n_dests = draw(st.integers(1, 2))
        return Operation(
            name,
            dests=tuple(draw(regs) for __ in range(n_dests)),
            srcs=tuple(draw(sources) for __ in range(spec.n_srcs)))
    if kind == "load":
        return Operation(draw(st.sampled_from(_LOADS)),
                         dests=(draw(regs),),
                         srcs=(draw(sources), draw(imms)))
    if kind == "store":
        return Operation(draw(st.sampled_from(_STORES)),
                         srcs=(draw(sources), draw(sources),
                               draw(imms)))
    if kind == "branch":
        name = draw(st.sampled_from(["br", "brt", "brf"]))
        srcs = (draw(regs),) if name != "br" else ()
        return Operation(name, srcs=srcs, target=Label("L7"))
    bindings = tuple((draw(regs), draw(sources))
                     for __ in range(draw(st.integers(0, 3))))
    return Operation("fork", target=Label("child"), bindings=bindings)


class TestAsmRoundtrip:
    @given(operations())
    @settings(max_examples=300)
    def test_operation_text_roundtrip(self, op):
        text = asmtext.emit_operation(op)
        parsed = asmtext.parse_operation(text)
        assert parsed.name == op.name
        assert parsed.dests == op.dests
        assert parsed.srcs == op.srcs
        assert parsed.target == op.target
        assert parsed.bindings == op.bindings
