"""Model-based property test of the memory system: any sequence of
Table 1 accesses to a small address range must match a simple
sequential model (per-address arrival ordering makes this exact)."""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.isa.instruction import Operation
from repro.isa.operands import Imm, Reg
from repro.machine.memory import MemorySpec, min_memory
from repro.sim.memory import MemRequest, MemorySystem
from repro.sim.stats import Stats

N_ADDRS = 4


class _Cell:
    """Per-request result slot (mirrors MemRequest.value)."""

    def __init__(self):
        self.value = None


class _Model:
    """Sequential oracle with park-until-satisfied semantics."""

    def __init__(self):
        self.values = [0] * N_ADDRS
        self.full = [True] * N_ADDRS
        self.parked = []      # (op name, addr, value, result cell)

    def access(self, name, addr, value, cell):
        if not self._try(name, addr, value, cell):
            self.parked.append((name, addr, value, cell))
        else:
            self._drain()

    def _try(self, name, addr, value, cell):
        pre_ok = {
            "ld": True, "st": True,
            "ld_ff": self.full[addr], "ld_fe": self.full[addr],
            "st_ff": self.full[addr], "st_ef": not self.full[addr],
        }[name]
        if not pre_ok:
            return False
        if name.startswith("ld"):
            cell.value = self.values[addr]
        else:
            self.values[addr] = value
        if name in ("st", "st_ef"):
            self.full[addr] = True
        elif name == "ld_fe":
            self.full[addr] = False
        return True

    def _drain(self):
        progress = True
        while progress:
            progress = False
            for entry in list(self.parked):
                if self._try(*entry):
                    self.parked.remove(entry)
                    progress = True


def _op(name):
    if name.startswith("ld"):
        return Operation(name, dests=(Reg(0, 0),),
                         srcs=(Imm(0), Imm(0)))
    return Operation(name, srcs=(Imm(0), Imm(0), Imm(0)))


class _Thread:
    tid = 0


accesses = st.lists(
    st.tuples(
        st.sampled_from(["ld", "st", "ld_ff", "ld_fe", "st_ff", "st_ef"]),
        st.integers(0, N_ADDRS - 1),
        st.integers(1, 99)),
    min_size=1, max_size=25)


class TestMemoryModel:
    @given(sequence=accesses, slow=st.booleans())
    @settings(max_examples=120, deadline=None)
    def test_matches_sequential_model(self, sequence, slow):
        spec = MemorySpec("fixed", hit_latency=4) if slow else \
            min_memory()
        memory = MemorySystem(spec, random.Random(0), Stats(),
                              size=N_ADDRS)
        model = _Model()
        requests = []
        # Submit one access per cycle (arrival order = program order).
        for cycle, (name, addr, value) in enumerate(sequence):
            request = MemRequest(_Thread(), _op(name), None, addr,
                                 store_value=value)
            cell = _Cell()
            requests.append((name, request, cell))
            memory.submit(request, cycle)
            memory.tick(cycle)
            model.access(name, addr, value, cell)
        for cycle in range(len(sequence), len(sequence) + 400):
            memory.tick(cycle)
            if memory.idle():
                break
        # Requests the model left parked must be parked in the sim too;
        # every completed load must return the model's value; final
        # memory contents and presence bits must agree.
        assert memory.idle() == (not model.parked)
        for name, request, cell in requests:
            if request.op.spec.is_load:
                assert request.value == cell.value, name
        for addr in range(N_ADDRS):
            assert memory.peek(addr) == model.values[addr]
            assert memory.is_full(addr) == model.full[addr]
