"""End-to-end sanitizer properties: a sanitized run that never trips
is bit-identical to a plain run at every level; a deliberately
miscompiled superblock is caught by the shadow-differential tier,
quarantined, reported with a replayable reproducer bundle, and the run
still completes bit-identical to the unfused event kernel."""

import json
import os

import pytest

from repro import compile_program
from repro.machine import baseline
from repro.programs import get_benchmark
from repro.sim import run_program
from repro.sim.sanitize import SanitizerPolicy, replay_bundle, run_sanitized

#: Cells covering ST fusion (lud/seq), MT interleaved fusion
#: (lud/coupled), and the multithreaded general case (fft/tpe).
CELLS = [("matrix", "coupled"), ("fft", "tpe"), ("lud", "seq"),
         ("lud", "coupled")]


def _cell(bench_name, mode):
    bench = get_benchmark(bench_name)
    config = baseline().with_engine("event").with_fusion(True)
    compiled = compile_program(bench.source(mode), config, mode=mode)
    return bench, compiled, config, bench.make_inputs(1)


@pytest.mark.parametrize("bench_name,mode", CELLS)
def test_deep_sanitized_run_is_bit_identical(bench_name, mode):
    bench, compiled, config, inputs = _cell(bench_name, mode)
    plain = run_program(compiled.program, config, overrides=inputs)
    sanitized = run_sanitized(compiled.program, config,
                              overrides=inputs, policy="deep")
    assert sanitized.cycles == plain.cycles
    assert sanitized.memory._values == plain.memory._values
    assert sanitized.memory._empty == plain.memory._empty
    assert sanitized.stats.summary() == plain.stats.summary()
    assert sanitized.sanitizer.trips == 0
    assert sanitized.sanitizer.audits > 0
    if plain.stats.fused_dispatches:
        assert sanitized.sanitizer.shadow_checks > 0


def _tamper_all_blocks(state):
    """A run_sanitized tamper hook wrapping every compiled superblock
    so each successful span also corrupts memory word 0 — the model of
    a miscompiled block whose spans silently drift from the reference.
    """
    def tamper(node):
        thread = node.active[0]
        table = node._decoded[thread.name].blocks
        for ip in sorted(table._entries):
            table._heat[ip] = 10 ** 9        # force past warmup
            block = table.get(ip)
            if block is None:
                continue
            real = block.fn

            def corrupt(*args, _real=real, _node=node, **kwargs):
                out = _real(*args, **kwargs)
                values = _node.memory._values
                values[0] = values.get(0, 0) + 999
                return out

            block.fn = corrupt
            state["wrapped"].append((thread.name, ip))
    return tamper


class TestMiscompiledBlock:
    def _run(self, tmp_path):
        bench, compiled, config, inputs = _cell("lud", "seq")
        reference = run_program(compiled.program,
                                config.with_fusion(False),
                                overrides=inputs)
        state = {"wrapped": []}
        policy = SanitizerPolicy(level="shadow",
                                 report_dir=str(tmp_path))
        result = run_sanitized(compiled.program, config,
                               overrides=inputs, policy=policy,
                               tamper=_tamper_all_blocks(state))
        assert state["wrapped"], "tamper hook found no blocks"
        return reference, result, state

    def test_detected_quarantined_and_bit_identical(self, tmp_path):
        reference, result, state = self._run(tmp_path)
        summary = result.sanitizer
        # Tier 2 tripped and triaged instead of dying or silently
        # completing wrong.
        assert summary.trips >= 1
        assert summary.requarantines >= 1
        assert summary.quarantined
        wrapped = set(state["wrapped"])
        assert set(map(tuple, summary.quarantined)) <= wrapped
        # Graceful de-optimization: the corrupted spans are barred and
        # the run completes bit-identical to the unfused event kernel.
        assert result.cycles == reference.cycles
        assert result.memory._values == reference.memory._values
        assert result.stats.summary() == reference.stats.summary()
        # The quarantine surfaces in Stats and in the de-fusion
        # counters (quarantined entries decline future dispatches).
        assert result.stats.quarantined_blocks == len(summary.quarantined)
        assert result.stats.defuse_reasons.get("quarantined", 0) > 0

    def test_trip_writes_replayable_bundle(self, tmp_path):
        __, result, __ = self._run(tmp_path)
        summary = result.sanitizer
        assert len(summary.reports) == 1
        bundle = summary.reports[0]
        meta = json.load(open(os.path.join(bundle, "meta.json")))
        assert meta["kind"] == "divergence"
        report = meta["report"]
        assert report["components"]
        assert report["suspects"]
        assert report["window"][1] > report["window"][0]
        # Replay restores the pre-divergence snapshot and re-runs
        # fused vs unfused.  This tamper corrupts closures in memory
        # only — pickling recompiles them clean — so the honest
        # verdict is "not reproduced"; a deterministic miscompile
        # (the real target) would reproduce.
        lines = []
        verdict = replay_bundle(bundle, out=lines.append)
        assert verdict["kind"] == "divergence"
        assert verdict["reproduced"] is False
        assert any("not reproduced" in line for line in lines)


def test_shadow_mode_without_fusion_still_audits():
    # Shadow differential execution needs a fused primary; without one
    # the sanitizer degrades to the audit tier instead of failing.
    bench, compiled, config, inputs = _cell("matrix", "coupled")
    unfused = config.with_fusion(False)
    plain = run_program(compiled.program, unfused, overrides=inputs)
    result = run_sanitized(compiled.program, unfused,
                           overrides=inputs, policy="shadow")
    assert result.cycles == plain.cycles
    assert result.sanitizer.shadow_checks == 0
    assert result.sanitizer.audits > 0
    assert result.sanitizer.trips == 0
