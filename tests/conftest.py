"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.machine import baseline, single_cluster


@pytest.fixture
def config():
    """The paper's baseline machine."""
    return baseline()


@pytest.fixture
def small_config():
    """One arithmetic cluster plus one branch cluster."""
    return single_cluster()


def compile_and_run(source, config, mode="sts", overrides=None, **kwargs):
    """Compile source and simulate it; returns the SimResult."""
    from repro import compile_program, run_program
    compiled = compile_program(source, config, mode=mode)
    return run_program(compiled.program, config, overrides=overrides,
                       **kwargs)


def assert_matches_interp(source, config, modes=("sts",), overrides=None):
    """Differential test: simulated memory must equal the reference
    interpreter's for every requested mode and every symbol."""
    from repro import compile_program, interpret, run_program
    expected = interpret(source, overrides=overrides)
    for mode in modes:
        compiled = compile_program(source, config, mode=mode)
        result = run_program(compiled.program, config,
                             overrides=overrides)
        for symbol in expected.memory:
            got = result.read_symbol(symbol)
            want = expected.read_symbol(symbol)
            assert got == want, (
                "mode %s symbol %s: %r != %r" % (mode, symbol, got, want))
    return expected
