"""Chaos tests for the supervised sweep: workers killed mid-cell,
workers that hang, and sweeps resumed from a journal after being
killed halfway.  Crash injection rides the ``REPRO_CHAOS_WORKER``
flag, which only the pool worker entry point consults — see
repro.experiments.supervision.chaos_if_requested.
"""

import json

import pytest

from repro.experiments.runner import Harness, RunSpec
from repro.experiments.supervision import SupervisorPolicy

SPECS = [RunSpec("matrix", "seq"), RunSpec("matrix", "coupled"),
         RunSpec("fft", "coupled"), RunSpec("lud", "coupled")]


def _harness():
    return Harness(compile_cache=False)


def _policy(**overrides):
    # Near-zero backoff: chaos tests rebuild pools repeatedly and must
    # not sit in real exponential-backoff sleeps.
    knobs = {"backoff_base": 0.01, "backoff_cap": 0.05}
    knobs.update(overrides)
    return SupervisorPolicy(**knobs)


def _serial_baseline():
    results = _harness().run_many([s for s in SPECS])
    return [(r.benchmark, r.mode, r.cycles, r.stats.summary())
            for r in results]


@pytest.fixture(scope="module")
def baseline():
    return _serial_baseline()


class TestCrashRecovery:
    def test_kill_once_mid_cell_is_bit_identical(self, baseline,
                                                 monkeypatch, tmp_path):
        # First worker to pick up matrix/coupled SIGKILLs itself; the
        # sentinel makes the retry succeed.  The sweep must finish
        # with results identical to the serial run.
        sentinel = tmp_path / "fired"
        monkeypatch.setenv("REPRO_CHAOS_WORKER",
                           "matrix/coupled@%s" % sentinel)
        results = _harness().run_many(SPECS, workers=2,
                                      policy=_policy())
        assert sentinel.exists()               # the chaos really fired
        assert [(r.benchmark, r.mode, r.cycles, r.stats.summary())
                for r in results] == baseline

    def test_kill_always_falls_back_to_serial(self, baseline,
                                              monkeypatch):
        # Every pooled attempt at matrix/coupled dies.  After the
        # retry budget the supervisor runs the cell in the parent
        # (where chaos never fires) — the sweep still completes and
        # matches the serial run bit for bit.
        monkeypatch.setenv("REPRO_CHAOS_WORKER", "matrix/coupled")
        results = _harness().run_many(
            SPECS, workers=2, policy=_policy(max_retries=1))
        assert [(r.benchmark, r.mode, r.cycles, r.stats.summary())
                for r in results] == baseline

    def test_hung_worker_times_out_and_is_collected(self, baseline,
                                                    monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_WORKER", "matrix/coupled:hang")
        results = _harness().run_many(
            SPECS, workers=2,
            policy=_policy(on_error="collect", cell_timeout=2.0))
        by_cell = {(SPECS[i].benchmark, SPECS[i].mode): results[i]
                   for i in range(len(SPECS))}
        failure = by_cell[("matrix", "coupled")]
        assert not failure.ok
        assert failure.timed_out
        assert failure.error_type == "CellTimeoutError"
        ok = [(r.benchmark, r.mode, r.cycles, r.stats.summary())
              for r in results if r.ok]
        expected = [cell for cell in baseline
                    if cell[:2] != ("matrix", "coupled")]
        assert ok == expected

    def test_hung_worker_raises_under_default_policy(self, monkeypatch):
        from repro.errors import CellTimeoutError
        monkeypatch.setenv("REPRO_CHAOS_WORKER", "matrix/coupled:hang")
        with pytest.raises(CellTimeoutError):
            _harness().run_many(
                [RunSpec("matrix", "coupled"), RunSpec("matrix", "seq")],
                workers=2, policy=_policy(cell_timeout=2.0))


class TestJournalResumeAfterKill:
    def test_killed_halfway_sweep_resumes_remainder_only(self,
                                                         baseline,
                                                         tmp_path):
        journal = tmp_path / "sweep.journal.jsonl"
        _harness().run_many(SPECS, journal=str(journal))
        lines = journal.read_text().splitlines()
        assert len(lines) == 1 + len(SPECS)
        # Re-create the journal as the supervisor would have left it
        # had the process been killed after completing two cells.
        journal.write_text("\n".join(lines[:3]) + "\n")
        executed = []
        original = Harness.run

        def counting_run(self, benchmark, mode, config=None, tag=None,
                         seed=None):
            executed.append((benchmark, mode))
            return original(self, benchmark, mode, config, tag, seed)

        resumed_harness = _harness()
        resumed_harness.run = counting_run.__get__(resumed_harness)
        resumed = resumed_harness.run_many(SPECS, journal=str(journal))
        assert sorted(executed) == sorted(
            [(s.benchmark, s.mode) for s in SPECS[2:]])
        assert [(r.benchmark, r.mode, r.cycles, r.stats.summary())
                for r in resumed] == baseline
        assert [r.replayed for r in resumed] == \
            [True, True, False, False]
        # The journal now holds the full sweep again for future runs.
        cells = [json.loads(line)
                 for line in journal.read_text().splitlines()
                 if json.loads(line).get("kind") == "cell"]
        assert len(cells) == len(SPECS)

    def test_chaos_run_with_journal_then_clean_resume(self, baseline,
                                                      monkeypatch,
                                                      tmp_path):
        # End to end: a journaled sweep survives a worker SIGKILL,
        # and a later resume replays everything without simulating.
        sentinel = tmp_path / "fired"
        journal = tmp_path / "sweep.journal.jsonl"
        monkeypatch.setenv("REPRO_CHAOS_WORKER",
                           "fft/coupled@%s" % sentinel)
        first = _harness().run_many(SPECS, workers=2,
                                    journal=str(journal),
                                    policy=_policy())
        assert [(r.benchmark, r.mode, r.cycles, r.stats.summary())
                for r in first] == baseline
        monkeypatch.delenv("REPRO_CHAOS_WORKER")
        import repro.experiments.runner as runner_module

        def boom(*args, **kwargs):
            raise AssertionError("resume must not re-simulate")

        monkeypatch.setattr(runner_module, "run_program", boom)
        resumed = _harness().run_many(SPECS, journal=str(journal))
        assert all(r.replayed for r in resumed)
        assert [(r.benchmark, r.mode, r.cycles, r.stats.summary())
                for r in resumed] == baseline
