"""Differential tests: compiled + simulated programs must reproduce the
reference interpreter's memory state exactly."""

import pytest

from repro.machine import baseline, single_cluster, unit_mix
from tests.conftest import assert_matches_interp

ALL_SINGLE_MODES = ("seq", "sts", "ideal")


class TestScalarPrograms:
    def test_arithmetic_kitchen_sink(self, config):
        assert_matches_interp("""
(program
  (global out 10 :int)
  (main
    (aset! out 0 (+ 3 4))
    (aset! out 1 (- 3 4))
    (aset! out 2 (* 3 4))
    (aset! out 3 (/ -9 2))
    (aset! out 4 (mod -9 2))
    (aset! out 5 (<< 3 2))
    (aset! out 6 (>> 12 2))
    (aset! out 7 (& 12 10))
    (aset! out 8 (| 12 10))
    (aset! out 9 (^ 12 10))))
""", config, modes=ALL_SINGLE_MODES)

    def test_float_kitchen_sink(self, config):
        assert_matches_interp("""
(program
  (global out 8)
  (main
    (aset! out 0 (+ 0.5 0.25))
    (aset! out 1 (* 3.0 -0.5))
    (aset! out 2 (/ 1.0 8.0))
    (aset! out 3 (sqrt 2.25))
    (aset! out 4 (abs -3.5))
    (aset! out 5 (neg 1.5))
    (aset! out 6 (min 1.5 2.5))
    (aset! out 7 (max 1.5 2.5))))
""", config, modes=("sts",))

    def test_comparisons(self, config):
        assert_matches_interp("""
(program
  (global out 6 :int)
  (main
    (aset! out 0 (< 1 2))
    (aset! out 1 (<= 2 2))
    (aset! out 2 (> 1 2))
    (aset! out 3 (>= 1 2))
    (aset! out 4 (== 2.5 2.5))
    (aset! out 5 (!= 2.5 2.5))))
""", config, modes=("seq", "sts"))


class TestControlFlow:
    def test_nested_loops(self, config):
        assert_matches_interp("""
(program
  (global out 1 :int)
  (main
    (let ((total 0))
      (for (i 0 5)
        (for (j 0 5)
          (if (< j i)
              (set! total (+ total 1)))))
      (aset! out 0 total))))
""", config, modes=ALL_SINGLE_MODES[:2])

    def test_while_with_complex_condition(self, config):
        assert_matches_interp("""
(program
  (global out 1 :int)
  (main
    (let ((i 0))
      (while (< (* i i) 50)
        (set! i (+ i 1)))
      (aset! out 0 i))))
""", config, modes=("sts",))

    def test_if_else_chains(self, config):
        assert_matches_interp("""
(program
  (global out 4 :int)
  (main
    (for (i 0 4)
      (if (== i 0) (aset! out i 10)
        (if (== i 1) (aset! out i 20)
          (if (== i 2) (aset! out i 30)
            (aset! out i 40)))))))
""", config, modes=("seq", "sts"))

    def test_ternary_expression(self, config):
        assert_matches_interp("""
(program
  (global out 8)
  (main
    (for (i 0 8)
      (aset! out i (if (< i 4) (float i) (float (- i 8)))))))
""", config, modes=("sts",))


class TestArrays:
    def test_indirect_indexing(self, config):
        assert_matches_interp("""
(program
  (global index 4 :int)
  (global out 4)
  (main
    (for (i 0 4)
      (aset! out (aref index i) (float i)))))
""", config, modes=("sts",),
            overrides={"index": [2, 0, 3, 1]})

    def test_in_place_update(self, config):
        assert_matches_interp("""
(program
  (global data 8)
  (main
    (for (i 0 8)
      (aset! data i (* (aref data i) 2.0)))))
""", config, modes=("seq", "sts"),
            overrides={"data": [float(i) for i in range(8)]})

    def test_prefix_sums(self, config):
        assert_matches_interp("""
(program
  (global data 8 :int)
  (main
    (for (i 1 8)
      (aset! data i (+ (aref data i) (aref data (- i 1)))))))
""", config, modes=("sts",),
            overrides={"data": [1, 2, 3, 4, 5, 6, 7, 8]})


class TestThreadedPrograms:
    THREADED = """
(program
  (const N 6)
  (global A N)
  (global B N)
  (global done N :int :empty)
  (kernel work (i (bias :float))
    (aset! B i (+ (* (aref A i) 2.0) bias))
    (aset-ef! done i 1))
  (main
    (forall (i 0 N) (work i 0.5))
    (for (i 0 N)
      (sync (aref-ff done i)))))
"""

    @pytest.mark.parametrize("mode", ["tpe", "coupled"])
    def test_fork_join(self, config, mode):
        assert_matches_interp(
            self.THREADED, config, modes=(mode,),
            overrides={"A": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]})

    def test_producer_consumer_pipeline(self, config):
        """A genuinely interleaved pattern the inline interpreter cannot
        run: producer refills one cell, consumer drains it, with st_ef /
        ld_fe forcing strict alternation."""
        from repro import compile_program, run_program
        source = """
(program
  (global cell 1 :empty)
  (global out 4)
  (kernel producer ((seed :float))
    (let ((x seed))
      (for (i 0 4)
        (aset-ef! cell 0 (* x (float (+ i 1)))))))
  (main
    (fork (producer 1.5))
    (for (i 0 4)
      (aset! out i (aref-fe cell 0)))))
"""
        compiled = compile_program(source, config, mode="coupled")
        result = run_program(compiled.program, config)
        assert result.read_symbol("out") == [1.5, 3.0, 4.5, 6.0]

    def test_atomic_counter(self, config):
        """Four threads atomically increment a shared counter via the
        fe/set idiom; the total must be exact despite interleaving."""
        from repro import compile_program, run_program
        source = """
(program
  (const NW 4)
  (global counter 1 :int)
  (global done NW :int :empty)
  (kernel bump (t)
    (for (k 0 10)
      (let ((v (aref-fe counter 0)))
        (aset! counter 0 (+ v 1))))
    (aset-ef! done t 1))
  (main
    (forall (t 0 NW) (bump t))
    (for (t 0 NW)
      (sync (aref-ff done t)))))
"""
        compiled = compile_program(source, config, mode="coupled")
        result = run_program(compiled.program, config)
        assert result.read_symbol("counter") == [40]


class TestOtherMachines:
    def test_single_cluster_machine(self, small_config):
        assert_matches_interp("""
(program
  (global out 4 :int)
  (main (for (i 0 4) (aset! out i (* i 3)))))
""", small_config, modes=("seq", "sts"))

    def test_unit_mix_machines(self):
        for n_iu, n_fpu in ((1, 1), (2, 1), (1, 2), (4, 4)):
            assert_matches_interp("""
(program
  (global out 6)
  (main
    (for (i 0 6)
      (aset! out i (* (float i) 1.5)))))
""", unit_mix(n_iu, n_fpu), modes=("sts",))

    def test_two_iu_cluster(self):
        from repro.machine import ClusterSpec, MachineConfig, \
            branch_cluster, fpu, iu, mem
        config = MachineConfig((
            ClusterSpec(units=(iu(), iu(), fpu(), mem())),
            branch_cluster()))
        assert_matches_interp("""
(program
  (global out 4 :int)
  (main
    (aset! out 0 (+ 1 2))
    (aset! out 1 (+ 3 4))
    (aset! out 2 (+ 5 6))
    (aset! out 3 (+ 7 8))))
""", config, modes=("sts",))

    def test_deep_pipeline_units(self):
        from repro.machine import ClusterSpec, MachineConfig, \
            branch_cluster, fpu, iu, mem
        config = MachineConfig((
            ClusterSpec(units=(iu(latency=2), fpu(latency=4),
                               mem(latency=2))),
            branch_cluster(latency=2)))
        assert_matches_interp("""
(program
  (global out 2)
  (main
    (let ((x 0.0))
      (for (i 0 5)
        (set! x (+ x (* (float i) 0.5))))
      (aset! out 0 x)
      (aset! out 1 (* x 2.0)))))
""", config, modes=("sts",))
