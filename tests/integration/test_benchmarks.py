"""Full-benchmark validation: every benchmark, every mode, against the
Python reference and (where the inline semantics allow) the reference
interpreter."""

import pytest

from repro import compile_program, interpret, run_program
from repro.machine import baseline
from repro.programs import BENCHMARKS, get_benchmark
from repro.programs.suite import BENCHMARK_ORDER

ALL_CASES = [(name, mode) for name in BENCHMARK_ORDER
             for mode in BENCHMARKS[name].modes]


@pytest.fixture(scope="module")
def config():
    return baseline()


@pytest.mark.parametrize("name,mode", ALL_CASES)
def test_benchmark_results_match_reference(name, mode, config):
    bench = get_benchmark(name)
    inputs = bench.make_inputs(seed=7)
    compiled = compile_program(bench.source(mode), config, mode=mode)
    result = run_program(compiled.program, config, overrides=inputs)
    problems = bench.check(result, inputs)
    assert not problems, problems[:5]


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
def test_interpreter_matches_reference(name):
    bench = get_benchmark(name)
    inputs = bench.make_inputs(seed=7)
    mode = "tpe" if "tpe" in bench.modes else "sts"
    ref = interpret(bench.source(mode), overrides=inputs)
    problems = bench.check(ref, inputs)
    assert not problems, problems[:5]


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
def test_different_seeds_give_different_inputs(name):
    bench = get_benchmark(name)
    a = bench.make_inputs(seed=1)
    b = bench.make_inputs(seed=2)
    assert a != b


def test_register_usage_stays_modest(config):
    """The paper: realistic configurations peak below 60 live registers
    per cluster; only Ideal mode needs hundreds."""
    for name in BENCHMARK_ORDER:
        bench = get_benchmark(name)
        for mode in bench.modes:
            compiled = compile_program(bench.source(mode), config,
                                       mode=mode)
            peak = max(compiled.peak_registers().values())
            if mode == "ideal":
                assert peak <= 600
            else:
                assert peak <= 80, (name, mode, peak)


def test_ideal_mode_uses_many_registers(config):
    bench = get_benchmark("matrix")
    compiled = compile_program(bench.source("ideal"), config,
                               mode="ideal")
    assert max(compiled.peak_registers().values()) > 60
