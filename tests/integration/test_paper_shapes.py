"""Qualitative reproduction checks: the orderings and crossovers the
paper's evaluation reports must hold on our rebuild (absolute numbers
will differ — different compiler, same discipline)."""

import pytest

from repro.experiments import figure6, figure7, table2, table3
from repro.experiments.runner import Harness
from repro.isa.operations import UnitClass
from repro.machine import baseline


@pytest.fixture(scope="module")
def harness():
    return Harness(seed=1)


@pytest.fixture(scope="module")
def table2_rows(harness):
    return table2.run(harness)


def cycles_of(rows, benchmark, mode):
    for row in rows:
        if row["benchmark"] == benchmark and row["mode"] == mode:
            return row["cycles"]
    raise KeyError((benchmark, mode))


class TestTable2Shapes:
    def test_seq_is_always_slowest(self, table2_rows):
        for bench in ("matrix", "fft", "model", "lud"):
            seq = cycles_of(table2_rows, bench, "seq")
            for mode in ("sts", "tpe", "coupled"):
                assert seq > cycles_of(table2_rows, bench, mode), \
                    (bench, mode)

    def test_coupled_beats_sts_everywhere(self, table2_rows):
        for bench in ("matrix", "fft", "model", "lud"):
            assert cycles_of(table2_rows, bench, "coupled") < \
                cycles_of(table2_rows, bench, "sts")

    def test_ideal_is_fastest(self, table2_rows):
        for bench in ("matrix", "fft"):
            ideal = cycles_of(table2_rows, bench, "ideal")
            for mode in ("seq", "sts", "tpe", "coupled"):
                assert ideal < cycles_of(table2_rows, bench, mode)

    def test_tpe_and_coupled_close_on_balanced_benchmarks(self,
                                                          table2_rows):
        """Matrix/Model/LUD are evenly partitionable: TPE within ~15%
        of Coupled (paper: 0.99-1.07)."""
        for bench in ("matrix", "model", "lud"):
            tpe = cycles_of(table2_rows, bench, "tpe")
            coupled = cycles_of(table2_rows, bench, "coupled")
            assert tpe / coupled < 1.15

    def test_fft_sequential_section_punishes_tpe(self, table2_rows):
        """The paper's headline FFT result: TPE loses badly to Coupled
        (and even to STS) because its main thread runs the serial
        data-movement section on one cluster."""
        tpe = cycles_of(table2_rows, "fft", "tpe")
        coupled = cycles_of(table2_rows, "fft", "coupled")
        sts = cycles_of(table2_rows, "fft", "sts")
        assert tpe > 1.3 * coupled
        assert tpe > sts

    def test_matrix_ideal_fpu_utilization_near_four(self, harness):
        result = harness.run("matrix", "ideal", baseline())
        assert result.fpu_util > 3.5     # paper: 3.93

    def test_coupled_utilization_exceeds_sts(self, table2_rows, harness):
        config = baseline()
        for bench in ("matrix", "fft", "model", "lud"):
            coupled = harness.run(bench, "coupled", config)
            sts = harness.run(bench, "sts", config)
            assert coupled.fpu_util + coupled.iu_util > \
                sts.fpu_util + sts.iu_util


class TestTable3Shapes:
    @pytest.fixture(scope="class")
    def data(self):
        return table3.run()

    def test_results_verified(self, data):
        assert data["aggregate"]["verified"]

    def test_priority_threads_dilate_monotonically(self, data):
        coupled = [r for r in data["rows"] if r["mode"] == "coupled"]
        runtimes = [r["runtime_per_device"] for r in coupled]
        assert runtimes == sorted(runtimes)

    def test_even_top_thread_dilates_past_schedule(self, data):
        top = next(r for r in data["rows"]
                   if r["mode"] == "coupled" and r["thread"] == 1)
        assert top["runtime_per_device"] > top["schedule"] * 0.8
        low = next(r for r in data["rows"]
                   if r["mode"] == "coupled" and r["thread"] == 4)
        assert low["runtime_per_device"] > top["runtime_per_device"]

    def test_higher_priority_threads_evaluate_more_devices(self, data):
        coupled = [r for r in data["rows"] if r["mode"] == "coupled"]
        assert coupled[0]["devices"] >= coupled[-1]["devices"]
        assert sum(r["devices"] for r in coupled) == 20

    def test_aggregate_coupled_beats_sts(self, data):
        agg = data["aggregate"]
        assert agg["coupled_total"] < agg["sts_total"]


class TestFigure6Shapes:
    @pytest.fixture(scope="class")
    def data(self, harness):
        return figure6.run(harness)

    def test_triport_is_cheap(self, data):
        assert abs(figure6.overhead_vs_full(data, "tri-port")) < 0.10

    def test_single_port_and_shared_bus_are_expensive(self, data):
        assert figure6.overhead_vs_full(data, "single-port") > 0.30
        assert figure6.overhead_vs_full(data, "shared-bus") > 0.30

    def test_area_ordering(self, data):
        assert data["areas"]["tri-port"] < 1.0
        assert data["areas"]["dual-port"] < data["areas"]["tri-port"]


class TestFigure7Shapes:
    @pytest.fixture(scope="class")
    def cells(self, harness):
        return figure7.run(harness)

    def test_latency_slows_everything(self, cells):
        for key, base in cells.items():
            bench, mode, model = key
            if model == "min":
                assert cells[(bench, mode, "mem2")] >= base

    def test_sts_hurts_most(self, cells):
        sts = figure7.slowdown(cells, "sts")
        assert sts > figure7.slowdown(cells, "coupled")
        assert sts > figure7.slowdown(cells, "tpe")

    def test_ideal_matrix_nearly_immune(self, cells):
        """Paper: Ideal-mode Matrix keeps its data in registers, so long
        memory latency hardly moves it; Ideal-mode FFT is hammered."""
        matrix_ratio = cells[("matrix", "ideal", "mem2")] \
            / cells[("matrix", "ideal", "min")]
        fft_ratio = cells[("fft", "ideal", "mem2")] \
            / cells[("fft", "ideal", "min")]
        assert matrix_ratio < 2.0
        assert fft_ratio > 2.0
