"""Size-parameterized benchmark variants stay correct at every scale."""

import pytest

from repro import baseline, compile_program, run_program
from repro.programs import scaled


def check(bench, mode, config):
    inputs = bench.make_inputs(seed=5)
    compiled = compile_program(bench.source(mode), config, mode=mode)
    result = run_program(compiled.program, config, overrides=inputs)
    problems = bench.check(result, inputs)
    assert not problems, problems[:3]
    return result


@pytest.fixture(scope="module")
def config():
    return baseline()


class TestScaledSizes:
    @pytest.mark.parametrize("n", [4, 6, 12])
    def test_matrix_sizes(self, config, n):
        check(scaled("matrix", n=n), "coupled", config)

    @pytest.mark.parametrize("n", [8, 16, 64])
    def test_fft_sizes(self, config, n):
        check(scaled("fft", n=n), "sts", config)

    def test_fft_threaded_other_size(self, config):
        check(scaled("fft", n=16), "coupled", config)

    def test_fft_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            scaled("fft", n=12).source("sts")

    @pytest.mark.parametrize("mesh", [3, 5])
    def test_lud_meshes(self, config, mesh):
        check(scaled("lud", mesh=mesh), "tpe", config)

    @pytest.mark.parametrize("niter", [1, 3])
    def test_model_iterations(self, config, niter):
        check(scaled("model", niter=niter), "coupled", config)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(TypeError):
            scaled("matrix", size=4)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            scaled("sort")


class TestScalingBehaviour:
    def test_cycles_grow_with_size(self, config):
        small = check(scaled("matrix", n=4), "sts", config)
        large = check(scaled("matrix", n=10), "sts", config)
        assert large.cycles > small.cycles

    def test_defaults_match_paper_sizes(self, config):
        from repro.programs import get_benchmark
        default = get_benchmark("fft")
        same = scaled("fft")
        assert default.source("seq") == same.source("seq")
