"""End-to-end resilience: graceful degradation under injected faults,
watchdog/livelock detection, wait-for deadlock reports, and
checkpoint/restore — the acceptance surface of the fault subsystem."""

import pytest

from repro import (DeadlockError, FaultEvent, FaultPlan, Node,
                   WatchdogError, baseline, compile_program, run_program)
from repro.errors import SimulationError
from repro.programs import get_benchmark
from repro.programs.suite import BENCHMARK_ORDER


def compiled_benchmark(name, config, mode="coupled"):
    bench = get_benchmark(name)
    compiled = compile_program(bench.source(mode), config, mode=mode)
    return bench, compiled, bench.make_inputs(seed=1)


ALU_OFFLINE = FaultPlan([FaultEvent("unit_offline", start=50,
                                    duration=1000, unit="c0.iu0")])


class TestGracefulDegradation:
    """A seeded plan disabling one ALU for 1000 cycles mid-run: every
    benchmark still produces correct results (degraded cycles, no
    error), and a replay is bit-identical."""

    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_alu_offline_still_correct_and_deterministic(self, name):
        config = baseline().with_faults(ALU_OFFLINE)
        bench, compiled, inputs = compiled_benchmark(name, config)
        first = run_program(compiled.program, config, overrides=inputs)
        again = run_program(compiled.program, config, overrides=inputs)
        assert not bench.check(first, inputs)
        assert first.cycles == again.cycles
        assert first.stats.summary() == again.stats.summary()

    def test_faults_cost_cycles_and_reroute(self):
        config = baseline()
        bench, compiled, inputs = compiled_benchmark("matrix", config)
        clean = run_program(compiled.program, config, overrides=inputs)
        faulted_config = config.with_faults(ALU_OFFLINE)
        faulted = run_program(compiled.program, faulted_config,
                              overrides=inputs)
        assert faulted.cycles >= clean.cycles
        assert faulted.stats.fault_reroutes > 0
        assert not bench.check(faulted, inputs)

    def test_no_reroute_waits_out_the_window(self):
        """With rerouting disabled the machine stalls through the
        window instead of deadlocking, then finishes correctly."""
        plan = FaultPlan([FaultEvent("unit_offline", start=50,
                                     duration=400, unit=uid)
                          for uid in ("c0.iu0", "c1.iu0", "c2.iu0",
                                      "c3.iu0")], reroute=False)
        config = baseline().with_faults(plan)
        bench, compiled, inputs = compiled_benchmark("matrix", config)
        result = run_program(compiled.program, config, overrides=inputs)
        assert result.cycles >= 450
        assert result.stats.fault_issue_stalls > 0
        assert result.stats.fault_reroutes == 0
        assert not bench.check(result, inputs)

    def test_memory_faults_still_correct(self):
        plan = FaultPlan([
            FaultEvent("mem_delay", start=0, duration=2000, extra=9),
            FaultEvent("bank_blackout", start=100, duration=150,
                       lo=0, hi=128),
            FaultEvent("presence_stall", start=0, duration=2000,
                       extra=6),
        ])
        config = baseline().with_faults(plan)
        bench, compiled, inputs = compiled_benchmark("matrix", config)
        result = run_program(compiled.program, config, overrides=inputs)
        assert not bench.check(result, inputs)
        assert result.stats.fault_mem_stall_cycles > 0


class TestWatchdog:
    def test_livelock_raises_watchdog_not_max_cycles(self):
        """Permanently blocked writebacks spin forever; the watchdog
        cuts the run long before --max-cycles and says why."""
        config = baseline()
        plan = FaultPlan([FaultEvent("writeback_block", start=20,
                                     duration=10**9, unit=slot.uid)
                          for slot in config.units])
        faulted = config.with_faults(plan)
        bench, compiled, inputs = compiled_benchmark("matrix", faulted)
        with pytest.raises(WatchdogError) as info:
            run_program(compiled.program, faulted, overrides=inputs,
                        max_cycles=5_000_000, watchdog_cycles=300)
        err = info.value
        assert "livelock" in str(err)
        assert err.cycle < 5000
        assert err.last_progress_cycle is not None
        assert err.cycle - err.last_progress_cycle >= 300
        assert err.blocked                      # per-thread reasons

    def test_max_cycles_is_a_structured_watchdog_error(self):
        config = baseline()
        bench, compiled, inputs = compiled_benchmark("lud", config)
        with pytest.raises(WatchdogError) as info:
            run_program(compiled.program, config, overrides=inputs,
                        max_cycles=500)
        err = info.value
        assert isinstance(err, SimulationError)  # old catch sites work
        assert "exceeded 500 cycles" in str(err)
        assert err.cycle == 500
        assert err.last_progress_cycle is not None
        assert "last forward progress" in str(err)


DEADLOCK_SOURCE = """
(program
  (global X 1)
  (global Y 1)
  (global out 2)
  (kernel grab-x ()
    (let ((v (aref-fe X 0)))
      (sync (aref-ff Y 0))
      (aset! out 0 v)))
  (kernel grab-y ()
    (let ((v (aref-fe Y 0)))
      (sync (aref-ff X 0))
      (aset! out 1 v)))
  (main
    (forall (i 0 1) (grab-x))
    (forall (i 0 1) (grab-y))
    (sync (aref-ff out 0))
    (sync (aref-ff out 1))))
"""


class TestDeadlockWaitForCycle:
    def test_cross_wait_names_the_cycle(self):
        """Two threads each empty a flag and wait for the other's: the
        report names the wait-for cycle through both threads and both
        addresses."""
        config = baseline()
        compiled = compile_program(DEADLOCK_SOURCE, config,
                                   mode="coupled")
        with pytest.raises(DeadlockError) as info:
            run_program(compiled.program, config,
                        overrides={"X": [7], "Y": [9]})
        err = info.value
        assert "wait-for cycle:" in str(err)
        assert err.wait_for                     # structured cycle
        assert err.wait_for[0] == err.wait_for[-1]
        text = " ".join(err.wait_for)
        assert "grab-x" in text and "grab-y" in text
        assert "addr 0" in text and "addr 1" in text
        assert err.blocked

    def test_dangling_wait_reports_no_cycle(self):
        """A load that nothing will ever satisfy deadlocks without a
        wait-for cycle; the report still lists the parked reference."""
        source = """
(program
  (global flag 1 :int :empty)
  (main (sync (aref-ff flag 0))))
"""
        config = baseline()
        compiled = compile_program(source, config, mode="coupled")
        with pytest.raises(DeadlockError) as info:
            run_program(compiled.program, config)
        err = info.value
        assert err.wait_for == []
        assert "addr 0" in str(err)


class TestCheckpointRestore:
    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_round_trip_matches_uninterrupted_run(self, name):
        config = baseline()
        bench, compiled, inputs = compiled_benchmark(name, config)
        reference = run_program(compiled.program, config,
                                overrides=inputs)

        node = Node(config)
        paused = node.run(compiled.program, overrides=inputs,
                          pause_at=reference.cycles // 2)
        assert paused is None
        snap = node.snapshot()

        restored = Node.restore(snap)
        result = restored.resume()
        assert result.cycles == reference.cycles
        assert result.stats.summary() == reference.stats.summary()
        assert not bench.check(result, inputs)

        # The original node can continue too, and the snapshot is
        # reusable for a second restore.
        original = node.resume()
        assert original.cycles == reference.cycles
        second = Node.restore(snap).resume()
        assert second.cycles == reference.cycles

    def test_round_trip_under_faults(self):
        config = baseline().with_faults(ALU_OFFLINE)
        bench, compiled, inputs = compiled_benchmark("matrix", config)
        reference = run_program(compiled.program, config,
                                overrides=inputs)
        node = Node(config)
        node.run(compiled.program, overrides=inputs, pause_at=400)
        result = Node.restore(node.snapshot()).resume()
        assert result.cycles == reference.cycles
        assert result.stats.summary() == reference.stats.summary()
        assert not bench.check(result, inputs)

    def test_snapshot_before_run_rejected(self):
        node = Node(baseline())
        with pytest.raises(SimulationError, match="resume"):
            node.resume()
